package graph

// Compaction support for the peeling hot loops: once most vertices of a
// frozen CSR are dead, every remaining pass still walks adjacency rows
// full of removed neighbors scattered across the original layout. The
// peel engines periodically rebuild a dense CSR of the surviving
// subgraph so later passes scan compact, cache-resident adjacency.
//
// Two relabels are offered:
//
//   - CompactInto keeps the order-preserving relabel (keep[i] becomes
//     node i), the same ascending-id relabel the LabelMap loaders and
//     InducedSubgraph use. Any scan in ascending new-id order then
//     visits vertices in ascending original-id order — the property the
//     weighted peeler's chunk-grouped float reductions depend on.
//
//   - CompactIntoDegreeOrdered relabels hub-first: vertices are ranked
//     by surviving degree, descending (ties in ascending keep order, so
//     the permutation is a pure function of graph shape). Dense rows
//     pack together at the front of the CSR, equal-length rows become
//     contiguous fixed-stride banks (RowBanks), and the frontier's hot
//     vertices share cache lines. The permutation is returned so
//     callers can compose their current→original id maps through it;
//     the integer peel engines do exactly that and stay bit-identical
//     to the id-ordered layout at every worker count.

// CompactScratch holds the reusable buffers behind CompactInto and
// CompactIntoDegreeOrdered, so a peel run that compacts several times
// allocates each buffer class once (buffers only grow). The zero value
// is ready to use. A scratch must not be reused while a graph returned
// from a compaction call on it is still alive: the returned graph (and
// its RowBanks and permutation) alias the scratch storage.
type CompactScratch struct {
	offsets []int32
	adj     []int32
	weights []float64
	newID   []int32

	// degree-ordered relabel state
	bits   Bitset  // keep membership over the old vertex space
	cnt    []int32 // surviving degree by keep index
	rdeg   []int32 // surviving degree by new rank
	bucket []int32 // counting-sort buckets
	order  []int32 // new rank -> old vertex id
	banks  RowBanks
}

// grow returns buf resized to n, reallocating only when capacity is
// insufficient.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// newIDs fills s.newID with the order-preserving relabel of keep over
// [0, n): keep[i] maps to i, everything else to -1.
func (s *CompactScratch) newIDs(n int, keep []int32) []int32 {
	s.newID = grow(s.newID, n)
	ids := s.newID
	for i := range ids {
		ids[i] = -1
	}
	for i, u := range keep {
		ids[u] = int32(i)
	}
	return ids
}

// keepBits fills s.bits with the membership set of keep over [0, n).
func (s *CompactScratch) keepBits(n int, keep []int32) Bitset {
	s.bits = grow(s.bits, (n+63)>>6)
	s.bits.Zero()
	for _, u := range keep {
		s.bits.Set(u)
	}
	return s.bits
}

// CompactInto builds the subgraph of g induced by keep — ascending,
// duplicate-free node ids — into the scratch buffers and returns it.
// The relabel is order-preserving (keep[i] becomes node i). Adjacency
// order is preserved: the neighbors of a kept vertex appear in the same
// relative order as in g, restricted to kept vertices, and edge weights
// are copied bit-exactly. The returned graph aliases s; it dies when s
// is next reused.
func (g *Undirected) CompactInto(keep []int32, s *CompactScratch) *Undirected {
	n := len(keep)
	newID := s.newIDs(g.n, keep)

	s.offsets = grow(s.offsets, n+1)
	offsets := s.offsets
	offsets[0] = 0
	for i, u := range keep {
		cnt := int32(0)
		for _, v := range g.Neighbors(u) {
			if newID[v] >= 0 {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + cnt
	}
	total := int(offsets[n])
	s.adj = grow(s.adj, total)
	adj := s.adj
	weighted := g.weights != nil
	var weights []float64
	if weighted {
		s.weights = grow(s.weights, total)
		weights = s.weights
	}
	var totalW float64
	for i, u := range keep {
		cur := offsets[i]
		ws := g.NeighborWeights(u)
		for j, v := range g.Neighbors(u) {
			nv := newID[v]
			if nv < 0 {
				continue
			}
			adj[cur] = nv
			if weighted {
				w := ws[j]
				weights[cur] = w
				if nv > int32(i) {
					totalW += w
				}
			}
			cur++
		}
	}
	m := int64(total) / 2
	if !weighted {
		totalW = float64(m)
	}
	return &Undirected{n: n, offsets: offsets, adj: adj, weights: weights, m: m, totalW: totalW}
}

// CompactIntoDegreeOrdered builds the same induced subgraph as
// CompactInto but relabels hub-first: new id r goes to the vertex with
// the r-th largest surviving degree (counting sort; equal degrees keep
// ascending keep order, so the permutation is deterministic). It
// returns the compacted graph — carrying a RowBanks view of the
// degree-class layout — and the permutation order, where order[r] is
// the keep-space (old current-space) id of new vertex r. Within a row,
// adjacency keeps g's relative neighbor order; row contents are the
// relabeled ids. The returned graph, banks, and order all alias s.
func (g *Undirected) CompactIntoDegreeOrdered(keep []int32, s *CompactScratch) (*Undirected, []int32) {
	n := len(keep)
	bits := s.keepBits(g.n, keep)

	// Surviving degree per keep index; counting sort descending, stable
	// in keep order.
	s.cnt = grow(s.cnt, n)
	cnt := s.cnt
	maxd := int32(0)
	for i, u := range keep {
		c := int32(0)
		for _, v := range g.Neighbors(u) {
			c += bits.Bit(v)
		}
		cnt[i] = c
		if c > maxd {
			maxd = c
		}
	}
	s.bucket = grow(s.bucket, int(maxd)+1)
	bucket := s.bucket
	for d := range bucket {
		bucket[d] = 0
	}
	for _, c := range cnt {
		bucket[c]++
	}
	pos := int32(0)
	for d := int(maxd); d >= 0; d-- {
		b := bucket[d]
		bucket[d] = pos
		pos += b
	}
	s.order = grow(s.order, n)
	s.rdeg = grow(s.rdeg, n)
	s.newID = grow(s.newID, g.n) // dead entries stale; bits guards every read
	order, rdeg, newID := s.order, s.rdeg, s.newID
	for i, u := range keep {
		r := bucket[cnt[i]]
		bucket[cnt[i]] = r + 1
		order[r] = u
		rdeg[r] = cnt[i]
		newID[u] = r
	}

	s.offsets = grow(s.offsets, n+1)
	offsets := s.offsets
	offsets[0] = 0
	for r := 0; r < n; r++ {
		offsets[r+1] = offsets[r] + rdeg[r]
	}
	total := int(offsets[n])
	// One slot of slack: the branch-free fill below writes every
	// neighbor before advancing the cursor, so trailing dropped
	// neighbors of the final row touch adj[total] once.
	s.adj = grow(s.adj, total+1)
	adj := s.adj[:total+1]
	weighted := g.weights != nil
	var weights []float64
	if weighted {
		s.weights = grow(s.weights, total)
		weights = s.weights
	}
	var totalW float64
	if weighted {
		for r := 0; r < n; r++ {
			u := order[r]
			cur := offsets[r]
			ws := g.NeighborWeights(u)
			for j, v := range g.Neighbors(u) {
				if !bits.Test(v) {
					continue
				}
				nv := newID[v]
				adj[cur] = nv
				w := ws[j]
				weights[cur] = w
				if nv > int32(r) {
					totalW += w
				}
				cur++
			}
		}
	} else {
		// Branch-free filter-copy: kept/dropped neighbors interleave
		// unpredictably in a decayed row, so a membership branch
		// mispredicts constantly; writing unconditionally and advancing
		// the cursor by the membership bit keeps the pipeline full. A
		// dropped neighbor writes a stale newID entry that the next kept
		// neighbor overwrites — the row never exceeds its exact length.
		for r := 0; r < n; r++ {
			u := order[r]
			cur := offsets[r]
			row := g.Neighbors(u)
			for _, v := range row {
				adj[cur] = newID[v]
				cur += bits.Bit(v)
			}
		}
		totalW = float64(int64(total) / 2)
	}
	m := int64(total) / 2

	// Degree classes over the ranked layout: runs of equal row length,
	// descending; over-stride hubs form the spill prefix.
	adj = adj[:total]
	b := &s.banks
	b.adj = adj
	b.degs, b.starts, b.base = b.degs[:0], b.starts[:0], b.base[:0]
	spill := 0
	for spill < n && rdeg[spill] > bankMaxStride {
		spill++
	}
	b.SpillEnd = int32(spill)
	for r := spill; r < n; {
		d := rdeg[r]
		b.degs = append(b.degs, d)
		b.starts = append(b.starts, int32(r))
		b.base = append(b.base, offsets[r])
		for r < n && rdeg[r] == d {
			r++
		}
	}
	b.starts = append(b.starts, int32(n))

	ng := &Undirected{n: n, offsets: offsets, adj: adj, weights: weights, m: m, totalW: totalW, banks: b}
	return ng, order
}

// DirectedCompactScratch is the directed analogue of CompactScratch.
type DirectedCompactScratch struct {
	outOffsets []int32
	outAdj     []int32
	inOffsets  []int32
	inAdj      []int32
	newID      []int32

	bits   Bitset
	outCnt []int32
	inCnt  []int32
	rout   []int32
	rin    []int32
	bucket []int32
	order  []int32
}

func (s *DirectedCompactScratch) keepBits(n int, keep []int32) Bitset {
	s.bits = grow(s.bits, (n+63)>>6)
	s.bits.Zero()
	for _, u := range keep {
		s.bits.Set(u)
	}
	return s.bits
}

// CompactInto builds the surviving directed subgraph induced by keep
// (ascending, duplicate-free; typically the union of the live S and T
// sides of Algorithm 3) into the scratch buffers. Because out-rows are
// only ever scanned for vertices still alive in S and in-rows for
// vertices still alive in T, rows of dead-side vertices compact to
// empty and surviving rows keep only the cross-alive edges: the
// out-row of u is its T-alive out-neighbors when aliveS(u), the in-row
// of v its S-alive in-neighbors when aliveT(v). Both views then
// describe exactly E(S, T), adjacency order preserved within a row.
//
// The relabel is degree-ordered: vertices rank by total surviving
// cross degree (out + in), descending, ties in ascending keep order —
// hub rows of both families pack toward the front. (Unlike the
// undirected layout there is no fixed-stride bank view: the two row
// families have independent lengths, and one permutation cannot make
// both contiguous-by-length at once.) The permutation order is
// returned alongside the graph, order[r] being the keep-space id of
// new vertex r; both alias s.
func (g *Directed) CompactInto(keep []int32, aliveS, aliveT Bitset, s *DirectedCompactScratch) (*Directed, []int32) {
	n := len(keep)
	bits := s.keepBits(g.n, keep)

	s.outCnt = grow(s.outCnt, n)
	s.inCnt = grow(s.inCnt, n)
	outCnt, inCnt := s.outCnt, s.inCnt
	maxd := int32(0)
	for i, u := range keep {
		oc, ic := int32(0), int32(0)
		if aliveS.Test(u) {
			for _, v := range g.OutNeighbors(u) {
				if bits.Test(v) && aliveT.Test(v) {
					oc++
				}
			}
		}
		if aliveT.Test(u) {
			for _, v := range g.InNeighbors(u) {
				if bits.Test(v) && aliveS.Test(v) {
					ic++
				}
			}
		}
		outCnt[i], inCnt[i] = oc, ic
		if d := oc + ic; d > maxd {
			maxd = d
		}
	}
	s.bucket = grow(s.bucket, int(maxd)+1)
	bucket := s.bucket
	for d := range bucket {
		bucket[d] = 0
	}
	for i := 0; i < n; i++ {
		bucket[outCnt[i]+inCnt[i]]++
	}
	pos := int32(0)
	for d := int(maxd); d >= 0; d-- {
		b := bucket[d]
		bucket[d] = pos
		pos += b
	}
	s.order = grow(s.order, n)
	s.rout = grow(s.rout, n)
	s.rin = grow(s.rin, n)
	s.newID = grow(s.newID, g.n) // dead entries stale; bits guards every read
	order, rout, rin, newID := s.order, s.rout, s.rin, s.newID
	for i, u := range keep {
		d := outCnt[i] + inCnt[i]
		r := bucket[d]
		bucket[d] = r + 1
		order[r] = u
		rout[r] = outCnt[i]
		rin[r] = inCnt[i]
		newID[u] = r
	}

	s.outOffsets = grow(s.outOffsets, n+1)
	s.inOffsets = grow(s.inOffsets, n+1)
	outOffsets, inOffsets := s.outOffsets, s.inOffsets
	outOffsets[0], inOffsets[0] = 0, 0
	for r := 0; r < n; r++ {
		outOffsets[r+1] = outOffsets[r] + rout[r]
		inOffsets[r+1] = inOffsets[r] + rin[r]
	}
	s.outAdj = grow(s.outAdj, int(outOffsets[n]))
	s.inAdj = grow(s.inAdj, int(inOffsets[n]))
	outAdj, inAdj := s.outAdj, s.inAdj
	for r := 0; r < n; r++ {
		u := order[r]
		if aliveS.Test(u) {
			cur := outOffsets[r]
			for _, v := range g.OutNeighbors(u) {
				if bits.Test(v) && aliveT.Test(v) {
					outAdj[cur] = newID[v]
					cur++
				}
			}
		}
		if aliveT.Test(u) {
			cur := inOffsets[r]
			for _, v := range g.InNeighbors(u) {
				if bits.Test(v) && aliveS.Test(v) {
					inAdj[cur] = newID[v]
					cur++
				}
			}
		}
	}
	ng := &Directed{
		n:          n,
		outOffsets: outOffsets,
		outAdj:     outAdj,
		inOffsets:  inOffsets,
		inAdj:      inAdj,
		m:          int64(outOffsets[n]),
	}
	return ng, order
}
