package graph

// Compaction support for the peeling hot loops: once most vertices of a
// frozen CSR are dead, every remaining pass still walks adjacency rows
// full of removed neighbors scattered across the original layout. The
// peel engines periodically rebuild a dense CSR of the surviving
// subgraph so later passes scan compact, cache-resident adjacency.
//
// Relabeling is order-preserving (keep[i] becomes node i), the same
// ascending-id relabel the LabelMap loaders and InducedSubgraph use, so
// any scan in ascending new-id order visits vertices in ascending
// original-id order — which is what lets the engines keep their
// bit-identical determinism contract across compactions.

// CompactScratch holds the reusable buffers behind CompactInto, so a
// peel run that compacts several times allocates each buffer class once
// (buffers only grow). The zero value is ready to use. A scratch must
// not be reused while a graph returned from a CompactInto call on it is
// still alive: the returned graph aliases the scratch storage.
type CompactScratch struct {
	offsets []int32
	adj     []int32
	weights []float64
	newID   []int32
}

// grow returns buf resized to n, reallocating only when capacity is
// insufficient.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// newIDs fills s.newID with the order-preserving relabel of keep over
// [0, n): keep[i] maps to i, everything else to -1.
func (s *CompactScratch) newIDs(n int, keep []int32) []int32 {
	s.newID = grow(s.newID, n)
	ids := s.newID
	for i := range ids {
		ids[i] = -1
	}
	for i, u := range keep {
		ids[u] = int32(i)
	}
	return ids
}

// CompactInto builds the subgraph of g induced by keep — ascending,
// duplicate-free node ids — into the scratch buffers and returns it.
// Adjacency order is preserved: the neighbors of a kept vertex appear
// in the same relative order as in g, restricted to kept vertices, and
// edge weights are copied bit-exactly. The returned graph aliases s;
// it dies when s is next reused.
func (g *Undirected) CompactInto(keep []int32, s *CompactScratch) *Undirected {
	n := len(keep)
	newID := s.newIDs(g.n, keep)

	s.offsets = grow(s.offsets, n+1)
	offsets := s.offsets
	offsets[0] = 0
	for i, u := range keep {
		cnt := int32(0)
		for _, v := range g.Neighbors(u) {
			if newID[v] >= 0 {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + cnt
	}
	total := int(offsets[n])
	s.adj = grow(s.adj, total)
	adj := s.adj
	weighted := g.weights != nil
	var weights []float64
	if weighted {
		s.weights = grow(s.weights, total)
		weights = s.weights
	}
	var totalW float64
	for i, u := range keep {
		cur := offsets[i]
		ws := g.NeighborWeights(u)
		for j, v := range g.Neighbors(u) {
			nv := newID[v]
			if nv < 0 {
				continue
			}
			adj[cur] = nv
			if weighted {
				w := ws[j]
				weights[cur] = w
				if nv > int32(i) {
					totalW += w
				}
			}
			cur++
		}
	}
	m := int64(total) / 2
	if !weighted {
		totalW = float64(m)
	}
	return &Undirected{n: n, offsets: offsets, adj: adj, weights: weights, m: m, totalW: totalW}
}

// DirectedCompactScratch is the directed analogue of CompactScratch.
type DirectedCompactScratch struct {
	outOffsets []int32
	outAdj     []int32
	inOffsets  []int32
	inAdj      []int32
	newID      []int32
}

func (s *DirectedCompactScratch) newIDs(n int, keep []int32) []int32 {
	s.newID = grow(s.newID, n)
	ids := s.newID
	for i := range ids {
		ids[i] = -1
	}
	for i, u := range keep {
		ids[u] = int32(i)
	}
	return ids
}

// CompactInto builds the surviving directed subgraph induced by keep
// (ascending, duplicate-free; typically the union of the live S and T
// sides of Algorithm 3) into the scratch buffers. Because out-rows are
// only ever scanned for vertices still alive in S and in-rows for
// vertices still alive in T, rows of dead-side vertices compact to
// empty and surviving rows keep only the cross-alive edges: the
// out-row of u is its T-alive out-neighbors when aliveS[u], the in-row
// of v its S-alive in-neighbors when aliveT[v]. Both views then
// describe exactly E(S, T), adjacency order preserved. The returned
// graph aliases s.
func (g *Directed) CompactInto(keep []int32, aliveS, aliveT []bool, s *DirectedCompactScratch) *Directed {
	n := len(keep)
	newID := s.newIDs(g.n, keep)

	s.outOffsets = grow(s.outOffsets, n+1)
	s.inOffsets = grow(s.inOffsets, n+1)
	outOffsets, inOffsets := s.outOffsets, s.inOffsets
	outOffsets[0], inOffsets[0] = 0, 0
	for i, u := range keep {
		outCnt, inCnt := int32(0), int32(0)
		if aliveS[u] {
			for _, v := range g.OutNeighbors(u) {
				if newID[v] >= 0 && aliveT[v] {
					outCnt++
				}
			}
		}
		if aliveT[u] {
			for _, v := range g.InNeighbors(u) {
				if newID[v] >= 0 && aliveS[v] {
					inCnt++
				}
			}
		}
		outOffsets[i+1] = outOffsets[i] + outCnt
		inOffsets[i+1] = inOffsets[i] + inCnt
	}
	s.outAdj = grow(s.outAdj, int(outOffsets[n]))
	s.inAdj = grow(s.inAdj, int(inOffsets[n]))
	outAdj, inAdj := s.outAdj, s.inAdj
	for i, u := range keep {
		if aliveS[u] {
			cur := outOffsets[i]
			for _, v := range g.OutNeighbors(u) {
				if nv := newID[v]; nv >= 0 && aliveT[v] {
					outAdj[cur] = nv
					cur++
				}
			}
		}
		if aliveT[u] {
			cur := inOffsets[i]
			for _, v := range g.InNeighbors(u) {
				if nv := newID[v]; nv >= 0 && aliveS[v] {
					inAdj[cur] = nv
					cur++
				}
			}
		}
	}
	return &Directed{
		n:          n,
		outOffsets: outOffsets,
		outAdj:     outAdj,
		inOffsets:  inOffsets,
		inAdj:      inAdj,
		m:          int64(outOffsets[n]),
	}
}
