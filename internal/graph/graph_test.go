package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Undirected {
	t.Helper()
	return MustFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d, want 0,0", g.NumNodes(), g.NumEdges())
	}
	if d := g.Density(); d != 0 {
		t.Fatalf("empty density = %v, want 0", d)
	}
}

func TestNodesNoEdges(t *testing.T) {
	g, err := NewBuilder(5).Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatalf("degree(%d) = %d, want 0", u, g.Degree(u))
		}
	}
}

func TestTriangleBasics(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if d := g.Density(); d != 1.0 {
		t.Fatalf("triangle density = %v, want 1", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParallelEdgesMerged(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges merged to %d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d,%d want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestWeightedParallelEdgesSumWeights(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddWeightedEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWeightedEdge(1, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if w := g.TotalWeight(); w != 4.0 {
		t.Fatalf("total weight = %v, want 4", w)
	}
	if wd := g.WeightedDegree(0); wd != 4.0 {
		t.Fatalf("weighted degree = %v, want 4", wd)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop: got %v", err)
	}
	if err := b.AddEdge(-1, 1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("negative id: got %v", err)
	}
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("out of range: got %v", err)
	}
	if err := b.AddWeightedEdge(0, 1, -1); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("negative weight: got %v", err)
	}
	if err := b.AddWeightedEdge(0, 1, math.NaN()); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("NaN weight: got %v", err)
	}
	if err := b.AddWeightedEdge(0, 1, math.Inf(1)); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("Inf weight: got %v", err)
	}
	if _, err := b.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if err := b.AddEdge(0, 1); err == nil {
		t.Fatal("AddEdge after Freeze: want error")
	}
	if _, err := b.Freeze(); err == nil {
		t.Fatal("double Freeze: want error")
	}
}

func TestSubgraphDensity(t *testing.T) {
	// Clique K4 plus a pendant node.
	g := MustFromEdges(5, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4},
	})
	tests := []struct {
		name string
		s    []int32
		want float64
	}{
		{"whole", []int32{0, 1, 2, 3, 4}, 7.0 / 5.0},
		{"clique", []int32{0, 1, 2, 3}, 6.0 / 4.0},
		{"pair", []int32{3, 4}, 0.5},
		{"single", []int32{4}, 0},
		{"empty", nil, 0},
	}
	for _, tc := range tests {
		got, err := g.SubgraphDensity(tc.s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: density = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, err := g.SubgraphDensity([]int32{99}); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("out of range subset: got %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(5, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4},
	})
	sub, mapping, err := g.InducedSubgraph([]int32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("induced K4: n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if len(mapping) != 4 || mapping[0] != 0 || mapping[3] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sub.Weighted() {
		t.Fatal("induced subgraph of an unweighted graph must be unweighted")
	}
	wb := NewBuilder(3)
	_ = wb.AddWeightedEdge(0, 1, 2.5)
	_ = wb.AddWeightedEdge(1, 2, 1.5)
	wg, _ := wb.Freeze()
	wsub, _, err := wg.InducedSubgraph([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !wsub.Weighted() || wsub.TotalWeight() != 2.5 {
		t.Fatalf("weighted induced subgraph: weighted=%v total=%v", wsub.Weighted(), wsub.TotalWeight())
	}
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate subset: got %v", err)
	}
	if _, _, err := g.InducedSubgraph([]int32{77}); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range subset: got %v", err)
	}
}

func TestEdgesIterationAndEarlyStop(t *testing.T) {
	g := triangle(t)
	var count int
	g.Edges(func(u, v int32, w float64) bool {
		if u >= v {
			t.Fatalf("Edges emitted u=%d >= v=%d", u, v)
		}
		if w != 1.0 {
			t.Fatalf("unweighted edge weight %v", w)
		}
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("iterated %d edges, want 3", count)
	}
	count = 0
	g.Edges(func(u, v int32, w float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop iterated %d, want 1", count)
	}
}

func TestEdgeList(t *testing.T) {
	g := triangle(t)
	el := g.EdgeList()
	if len(el) != 3 {
		t.Fatalf("EdgeList len %d", len(el))
	}
}

// Property: for any random graph, sum of degrees == 2m and Validate passes.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		added := rng.Intn(3 * n)
		for i := 0; i < added; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
		}
		g, err := b.Freeze()
		if err != nil {
			return false
		}
		var degSum int64
		for u := int32(0); int(u) < n; u++ {
			degSum += int64(g.Degree(u))
		}
		return degSum == 2*g.NumEdges() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: density of the full node set equals Density().
func TestFullSubsetDensityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g, _ := b.Freeze()
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		d, err := g.SubgraphDensity(all)
		return err == nil && math.Abs(d-g.Density()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
