// Package charikar implements Charikar's greedy 2-approximation for the
// densest subgraph problem: repeatedly remove a minimum-degree node and
// return the densest intermediate subgraph.
//
// This is the algorithm the paper's Algorithm 1 relaxes; it serves as the
// quality baseline (ε → 0 limit, one node per pass) in the ablation
// benchmarks. The unweighted version runs in O(n + m) using a bucket
// queue over exact remaining degrees; the weighted version uses a binary
// heap, O(m log n).
package charikar

import (
	"container/heap"
	"context"
	"fmt"

	"densestream/internal/graph"
)

// Result reports the greedy solution and the work performed.
type Result struct {
	Set     []int32 // densest intermediate subgraph
	Density float64
	Peels   int // nodes removed before the best prefix was reached (n - |Set|)
}

// Densest runs the greedy peel on an unweighted graph. For weighted
// graphs use DensestWeighted.
//
// The bucket queue stores every remaining node in a doubly linked list
// keyed by its exact current degree, so each pop is a true minimum-degree
// node and the maintained edge counter is exact. Total work is O(n + m).
func Densest(g *graph.Undirected) (*Result, error) {
	return DensestCtx(nil, g)
}

// peelCheckMask throttles the context poll inside the greedy peel
// loops: one Ctx.Err() load every peelCheckMask+1 removals.
const peelCheckMask = 1<<12 - 1

// DensestCtx is Densest with cooperative cancellation: ctx is polled
// every peelCheckMask+1 peels, returning ctx.Err() mid-run instead of
// finishing the peel. A nil ctx never cancels.
func DensestCtx(ctx context.Context, g *graph.Undirected) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if g.Weighted() {
		return nil, fmt.Errorf("charikar: use DensestWeighted for weighted graphs")
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(int32(u)))
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Doubly linked bucket lists over exact degrees.
	head := make([]int32, maxDeg+1) // head[d] = first node with degree d, -1 if none
	for d := range head {
		head[d] = -1
	}
	next := make([]int32, n)
	prev := make([]int32, n)
	for u := n - 1; u >= 0; u-- {
		d := deg[u]
		next[u] = head[d]
		prev[u] = -1
		if head[d] != -1 {
			prev[head[d]] = int32(u)
		}
		head[d] = int32(u)
	}
	unlink := func(u int32) {
		if prev[u] != -1 {
			next[prev[u]] = next[u]
		} else {
			head[deg[u]] = next[u]
		}
		if next[u] != -1 {
			prev[next[u]] = prev[u]
		}
	}
	relink := func(u int32) { // insert u at head of its (new) degree bucket
		d := deg[u]
		next[u] = head[d]
		prev[u] = -1
		if head[d] != -1 {
			prev[head[d]] = u
		}
		head[d] = u
	}

	removed := make([]bool, n)
	peelOrder := make([]int32, 0, n)
	edges := g.NumEdges()
	bestDensity := g.Density()
	bestRemaining := n
	cur := int32(0)
	for len(peelOrder) < n-1 {
		if len(peelOrder)&peelCheckMask == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for cur <= maxDeg && head[cur] == -1 {
			cur++
		}
		if cur > maxDeg {
			return nil, fmt.Errorf("charikar: bucket queue exhausted with %d nodes left", n-len(peelOrder))
		}
		u := head[cur]
		unlink(u)
		removed[u] = true
		peelOrder = append(peelOrder, u)
		for _, v := range g.Neighbors(u) {
			if removed[v] {
				continue
			}
			unlink(v)
			deg[v]--
			relink(v)
			edges--
		}
		// A neighbor may have dropped to cur-1.
		if cur > 0 {
			cur--
		}
		remaining := n - len(peelOrder)
		d := float64(edges) / float64(remaining)
		if d > bestDensity {
			bestDensity = d
			bestRemaining = remaining
		}
	}
	inPeeled := make([]bool, n)
	for _, u := range peelOrder[:n-bestRemaining] {
		inPeeled[u] = true
	}
	set := make([]int32, 0, bestRemaining)
	for u := 0; u < n; u++ {
		if !inPeeled[u] {
			set = append(set, int32(u))
		}
	}
	return &Result{Set: set, Density: bestDensity, Peels: n - bestRemaining}, nil
}

// DensestWeighted runs the greedy peel minimizing current weighted degree.
// It accepts unweighted graphs too (weights of 1), at heap cost.
func DensestWeighted(g *graph.Undirected) (*Result, error) {
	return DensestWeightedCtx(nil, g)
}

// DensestWeightedCtx is DensestWeighted with cooperative cancellation;
// see DensestCtx.
func DensestWeightedCtx(ctx context.Context, g *graph.Undirected) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		wdeg[u] = g.WeightedDegree(int32(u))
	}
	h := &nodeHeap{}
	heap.Init(h)
	for u := 0; u < n; u++ {
		heap.Push(h, nodeEntry{node: int32(u), key: wdeg[u]})
	}
	removed := make([]bool, n)
	removedOrder := make([]int32, 0, n)
	weight := g.TotalWeight()
	bestDensity := g.Density()
	bestRemaining := n
	remaining := n
	var pops int64
	for remaining > 1 {
		if pops&peelCheckMask == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		e := heap.Pop(h).(nodeEntry)
		u := e.node
		if removed[u] {
			continue
		}
		if e.key > wdeg[u]+1e-12 {
			continue // stale heap entry; a fresh one exists
		}
		removed[u] = true
		removedOrder = append(removedOrder, u)
		remaining--
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			if removed[v] {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			weight -= w
			wdeg[v] -= w
			heap.Push(h, nodeEntry{node: v, key: wdeg[v]})
		}
		d := weight / float64(remaining)
		if d > bestDensity {
			bestDensity = d
			bestRemaining = remaining
		}
	}
	inRemoved := make([]bool, n)
	for _, u := range removedOrder[:n-bestRemaining] {
		inRemoved[u] = true
	}
	set := make([]int32, 0, bestRemaining)
	for u := 0; u < n; u++ {
		if !inRemoved[u] {
			set = append(set, int32(u))
		}
	}
	return &Result{Set: set, Density: bestDensity, Peels: n - bestRemaining}, nil
}

type nodeEntry struct {
	node int32
	key  float64
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
