package charikar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"densestream/internal/flow"
	"densestream/internal/gen"
	"densestream/internal/graph"
)

func TestDensestClique(t *testing.T) {
	g, _ := gen.Clique(8)
	r, err := Densest(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Density-3.5) > 1e-12 {
		t.Fatalf("K8 density = %v, want 3.5", r.Density)
	}
	if len(r.Set) != 8 || r.Peels != 0 {
		t.Fatalf("set=%d peels=%d", len(r.Set), r.Peels)
	}
}

func TestDensestCliquePlusTail(t *testing.T) {
	// K5 plus a path; greedy should peel the path and find the K5.
	b := graph.NewBuilder(12)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = b.AddEdge(int32(i), int32(j))
		}
	}
	for i := 4; i < 11; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g, _ := b.Freeze()
	r, err := Densest(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Density-2.0) > 1e-12 {
		t.Fatalf("density = %v, want 2 (the K5)", r.Density)
	}
	if len(r.Set) != 5 {
		t.Fatalf("set = %v, want K5 nodes", r.Set)
	}
}

func TestDensestStar(t *testing.T) {
	g, _ := gen.Star(10)
	r, err := Densest(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Density-0.9) > 1e-12 {
		t.Fatalf("star density = %v, want 0.9", r.Density)
	}
}

func TestDensestEdgeCases(t *testing.T) {
	empty, _ := graph.NewBuilder(0).Freeze()
	if _, err := Densest(empty); err == nil {
		t.Fatal("empty graph accepted")
	}
	single, _ := graph.NewBuilder(1).Freeze()
	r, err := Densest(single)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density != 0 || len(r.Set) != 1 {
		t.Fatalf("single node: %+v", r)
	}
	edgeless, _ := graph.NewBuilder(5).Freeze()
	r, err = Densest(edgeless)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density != 0 {
		t.Fatalf("edgeless density = %v", r.Density)
	}
	wb := graph.NewBuilder(2)
	_ = wb.AddWeightedEdge(0, 1, 2)
	wg, _ := wb.Freeze()
	if _, err := Densest(wg); err == nil {
		t.Fatal("weighted graph accepted by unweighted Densest")
	}
}

// Property: greedy is a 2-approximation versus the exact flow solver.
func TestGreedyTwoApproxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		m := int64(1 + rng.Intn(4*n))
		if maxM := int64(n) * int64(n-1) / 2; m > maxM {
			m = maxM
		}
		g, err := gen.Gnm(n, m, seed)
		if err != nil {
			return false
		}
		exact, err := flow.ExactDensest(g)
		if err != nil {
			return false
		}
		greedy, err := Densest(g)
		if err != nil {
			return false
		}
		if greedy.Density > exact.Density+1e-9 {
			return false // greedy can never beat the optimum
		}
		return greedy.Density >= exact.Density/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported set really has the reported density.
func TestGreedySetDensityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		m := int64(rng.Intn(3*n)) + 1
		if maxM := int64(n) * int64(n-1) / 2; m > maxM {
			m = maxM
		}
		g, err := gen.Gnm(n, m, seed)
		if err != nil {
			return false
		}
		r, err := Densest(g)
		if err != nil {
			return false
		}
		d, err := g.SubgraphDensity(r.Set)
		if err != nil {
			return false
		}
		return math.Abs(d-r.Density) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDensestWeightedMatchesUnweighted(t *testing.T) {
	// Tie-breaking differs between the bucket queue and the heap, so the
	// two greedy runs may find different intermediate subgraphs. Both must
	// still be 2-approximations of the same optimum.
	f := func(seed int64) bool {
		g, err := gen.Gnm(20, 50, seed)
		if err != nil {
			return false
		}
		exact, err := flow.ExactDensest(g)
		if err != nil {
			return false
		}
		u, err := Densest(g)
		if err != nil {
			return false
		}
		w, err := DensestWeighted(g)
		if err != nil {
			return false
		}
		ok := func(d float64) bool {
			return d >= exact.Density/2-1e-9 && d <= exact.Density+1e-9
		}
		return ok(u.Density) && ok(w.Density)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDensestWeightedPrefersHeavyClique(t *testing.T) {
	// Two K4s; one has weight-10 edges, the other weight-1.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = b.AddWeightedEdge(int32(i), int32(j), 10)
			_ = b.AddWeightedEdge(int32(i+4), int32(j+4), 1)
		}
	}
	g, _ := b.Freeze()
	r, err := DensestWeighted(g)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy K4: density 60/4 = 15.
	if math.Abs(r.Density-15) > 1e-9 {
		t.Fatalf("weighted density = %v, want 15", r.Density)
	}
	for _, u := range r.Set {
		if u >= 4 {
			t.Fatalf("set contains light-clique node %d: %v", u, r.Set)
		}
	}
}

func TestDensestWeightedEdgeCases(t *testing.T) {
	empty, _ := graph.NewBuilder(0).Freeze()
	if _, err := DensestWeighted(empty); err == nil {
		t.Fatal("empty accepted")
	}
	single, _ := graph.NewBuilder(1).Freeze()
	r, err := DensestWeighted(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Set) != 1 {
		t.Fatalf("single: %+v", r)
	}
}

func TestGreedyOnPlantedRecoversCore(t *testing.T) {
	g, planted, err := gen.PlantedDense(800, 1600, 2.2, 30, 0.95, 17)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Densest(g)
	if err != nil {
		t.Fatal(err)
	}
	plantedDensity, _ := g.SubgraphDensity(planted)
	if r.Density < plantedDensity*0.9 {
		t.Fatalf("greedy density %v far below planted %v", r.Density, plantedDensity)
	}
}
