package charikar

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"densestream/internal/gen"
	"densestream/internal/graph"
)

// countdownCtx reports context.Canceled after limit Err polls, landing
// a deterministic cancellation inside the peel loop.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestDensestCtxCancelsMidPeel(t *testing.T) {
	// > peelCheckMask nodes, so the loop polls more than once.
	g, err := gen.ChungLu(3*(peelCheckMask+1), 6*int64(peelCheckMask+1), 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	free := &countdownCtx{Context: context.Background(), limit: 1 << 62}
	want, err := Densest(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DensestCtx(free, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Density != want.Density || got.Peels != want.Peels {
		t.Fatal("ctx peel diverged from plain peel")
	}
	polls := free.polls.Load()
	if polls < 2 {
		t.Fatalf("full peel polled ctx %d times; the loop is not polling", polls)
	}
	mid := &countdownCtx{Context: context.Background(), limit: polls / 2}
	if _, err := DensestCtx(mid, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-peel cancellation: want context.Canceled, got %v", err)
	}
}

func TestDensestWeightedCtxCancelsMidPeel(t *testing.T) {
	n := 2 * (peelCheckMask + 1)
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddWeightedEdge(int32(i), int32(i+1), 1.5); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	free := &countdownCtx{Context: context.Background(), limit: 1 << 62}
	if _, err := DensestWeightedCtx(free, g); err != nil {
		t.Fatal(err)
	}
	polls := free.polls.Load()
	if polls < 2 {
		t.Fatalf("weighted peel polled ctx %d times", polls)
	}
	mid := &countdownCtx{Context: context.Background(), limit: polls / 2}
	if _, err := DensestWeightedCtx(mid, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
