package core

import (
	"fmt"
	"math"

	"densestream/internal/graph"
)

// DirectedResult is the output of Algorithm 3 for one value of c.
type DirectedResult struct {
	S       []int32            `json:"s"` // S̃ and T̃: the densest intermediate pair
	T       []int32            `json:"t"`
	Density float64            `json:"density"` // ρ(S̃, T̃) = |E(S̃,T̃)| / sqrt(|S̃||T̃|)
	Passes  int                `json:"passes"`
	Trace   []DirectedPassStat `json:"trace"`
}

// Directed runs Algorithm 3 for a fixed ratio guess c = |S*|/|T*|:
// starting from S = T = V, each pass removes either A(S) (nodes of S with
// out-degree into T at most (1+ε)·|E(S,T)|/|S|) when |S|/|T| ≥ c, or the
// symmetric B(T) otherwise, tracking the densest (S, T) seen. If c is
// correct this is a (2+2ε)-approximation (Lemma 12) in O(log_{1+ε} n)
// passes (Lemma 13).
func Directed(g *graph.Directed, c, eps float64) (*DirectedResult, error) {
	return DirectedOpts(g, c, eps, Opts{Workers: 1})
}

// DirectedOpts is Directed with an explicit execution configuration:
// both side scans walk their live-vertex frontiers with per-chunk batch
// buffers merged in index order, and the cross-degree updates run push-
// or pull-directed with owned-lane merges (no atomics), so results are
// bit-identical for every worker count.
func DirectedOpts(g *graph.Directed, c, eps float64, o Opts) (*DirectedResult, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("core: c must be a finite value > 0, got %v", c)
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	st := newDirectedState(g, o.pool())
	edges := g.NumEdges()
	sizeS, sizeT := n, n

	density := func() float64 {
		if sizeS == 0 || sizeT == 0 {
			return 0
		}
		return float64(edges) / math.Sqrt(float64(sizeS)*float64(sizeT))
	}

	bestPass := 0
	bestDensity := density()
	trace := []DirectedPassStat{{
		Pass: 0, SizeS: sizeS, SizeT: sizeT, Edges: edges,
		Density: bestDensity, PeeledSide: '-',
	}}

	pass := 0
	for sizeS > 0 && sizeT > 0 {
		if err := o.Checkpoint(trace[len(trace)-1].AsPassStat()); err != nil {
			return nil, &PartialError{Passes: pass, DirectedTrace: trace, Err: err}
		}
		pass++
		var stat DirectedPassStat
		if float64(sizeS) >= c*float64(sizeT) {
			// Remove A(S): below-average out-degree into T.
			cut := (1 + eps) * float64(edges) / float64(sizeS)
			pushVol, degSum, err := st.scanRemoveS(o, pass, cut)
			if err != nil {
				return nil, &PartialError{Passes: pass - 1, DirectedTrace: trace, Err: err}
			}
			if len(st.batch) == 0 {
				return nil, fmt.Errorf("core: directed pass %d removed no S nodes", pass)
			}
			edges = st.peelS(o, pass, edges, pushVol, degSum)
			sizeS -= len(st.batch)
			stat = DirectedPassStat{RemovedS: len(st.batch), PeeledSide: 'S'}
		} else {
			// Remove B(T): below-average in-degree from S.
			cut := (1 + eps) * float64(edges) / float64(sizeT)
			pushVol, degSum, err := st.scanRemoveT(o, pass, cut)
			if err != nil {
				return nil, &PartialError{Passes: pass - 1, DirectedTrace: trace, Err: err}
			}
			if len(st.batch) == 0 {
				return nil, fmt.Errorf("core: directed pass %d removed no T nodes", pass)
			}
			edges = st.peelT(o, pass, edges, pushVol, degSum)
			sizeT -= len(st.batch)
			stat = DirectedPassStat{RemovedT: len(st.batch), PeeledSide: 'T'}
		}
		stat.Pass = pass
		stat.SizeS = sizeS
		stat.SizeT = sizeT
		stat.Edges = edges
		stat.Density = density()
		trace = append(trace, stat)
		if stat.Density > bestDensity {
			bestDensity = stat.Density
			bestPass = pass
		}
	}

	return &DirectedResult{
		S:       survivorsAfter(st.removedAtS, bestPass),
		T:       survivorsAfter(st.removedAtT, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

// SweepPoint records the outcome of Algorithm 3 for one c in a sweep.
type SweepPoint struct {
	C       float64 `json:"c"`
	Density float64 `json:"density"`
	Passes  int     `json:"passes"`
}

// SweepResult aggregates a powers-of-δ sweep over c.
type SweepResult struct {
	Best   *DirectedResult `json:"best"`
	BestC  float64         `json:"bestC"`
	Points []SweepPoint    `json:"points"` // one per attempted c, in increasing c order
}

// DirectedSweep runs Algorithm 3 for c = δ^j covering [1/n, n] and keeps
// the best result. Trying powers of δ instead of all n² ratios costs at
// most a δ factor in the approximation (§6.4). δ must exceed 1.
func DirectedSweep(g *graph.Directed, delta, eps float64) (*SweepResult, error) {
	return DirectedSweepOpts(g, delta, eps, Opts{Workers: 1})
}

// DirectedSweepOpts is DirectedSweep with an explicit execution
// configuration; each per-c run uses the sharded engine, while the
// sweep itself iterates c values in order (the best-result tie-break
// depends on it).
func DirectedSweepOpts(g *graph.Directed, delta, eps float64, o Opts) (*SweepResult, error) {
	if delta <= 1 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("core: delta must be > 1, got %v", delta)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	maxJ := int(math.Ceil(math.Log(float64(n)) / math.Log(delta)))
	sweep := &SweepResult{}
	for j := -maxJ; j <= maxJ; j++ {
		c := math.Pow(delta, float64(j))
		r, err := DirectedOpts(g, c, eps, o)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at c=%v: %w", c, err)
		}
		sweep.Points = append(sweep.Points, SweepPoint{C: c, Density: r.Density, Passes: r.Passes})
		if sweep.Best == nil || r.Density > sweep.Best.Density {
			sweep.Best = r
			sweep.BestC = c
		}
	}
	return sweep, nil
}
