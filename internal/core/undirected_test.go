package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"densestream/internal/flow"
	"densestream/internal/gen"
	"densestream/internal/graph"
)

func TestUndirectedClique(t *testing.T) {
	g, _ := gen.Clique(8)
	for _, eps := range []float64{0, 0.1, 0.5, 1, 2} {
		r, err := Undirected(g, eps)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		// The whole clique is optimal and nothing denser appears later.
		if math.Abs(r.Density-3.5) > 1e-12 {
			t.Fatalf("eps=%v: density = %v, want 3.5", eps, r.Density)
		}
		if len(r.Set) != 8 {
			t.Fatalf("eps=%v: |set| = %d, want 8", eps, len(r.Set))
		}
	}
}

func TestUndirectedCliquePlusTail(t *testing.T) {
	b := graph.NewBuilder(30)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			_ = b.AddEdge(int32(i), int32(j))
		}
	}
	for i := 5; i < 29; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g, _ := b.Freeze()
	r, err := Undirected(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum is the K6 (density 2.5); guarantee is within 2(1+0.5) = 3x.
	if r.Density < 2.5/3-1e-9 {
		t.Fatalf("density = %v, below guarantee", r.Density)
	}
}

func TestUndirectedInputValidation(t *testing.T) {
	g, _ := gen.Clique(3)
	for _, eps := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := Undirected(g, eps); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
	empty, _ := graph.NewBuilder(0).Freeze()
	if _, err := Undirected(empty, 0.5); !errors.Is(err, graph.ErrEmptyGraph) {
		t.Fatalf("empty: %v", err)
	}
	wb := graph.NewBuilder(2)
	_ = wb.AddWeightedEdge(0, 1, 2)
	wg, _ := wb.Freeze()
	if _, err := Undirected(wg, 0.5); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestUndirectedEdgelessGraph(t *testing.T) {
	g, _ := graph.NewBuilder(4).Freeze()
	r, err := Undirected(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density != 0 {
		t.Fatalf("density = %v", r.Density)
	}
	if r.Passes != 1 {
		t.Fatalf("passes = %d, want 1 (all removed at once)", r.Passes)
	}
}

func TestUndirectedTraceConsistency(t *testing.T) {
	g, _ := gen.ChungLu(2000, 8000, 2.1, 3)
	r, err := Undirected(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != r.Passes+1 {
		t.Fatalf("trace length %d, passes %d", len(r.Trace), r.Passes)
	}
	if r.Trace[0].Nodes != g.NumNodes() || r.Trace[0].Edges != g.NumEdges() {
		t.Fatalf("initial trace %+v", r.Trace[0])
	}
	last := r.Trace[len(r.Trace)-1]
	if last.Nodes != 0 || last.Edges != 0 {
		t.Fatalf("final trace %+v, want empty graph", last)
	}
	totalRemoved := 0
	for i := 1; i < len(r.Trace); i++ {
		cur, prev := r.Trace[i], r.Trace[i-1]
		if cur.Nodes >= prev.Nodes {
			t.Fatalf("pass %d did not shrink: %d -> %d", i, prev.Nodes, cur.Nodes)
		}
		if cur.Edges > prev.Edges {
			t.Fatalf("pass %d edges grew: %d -> %d", i, prev.Edges, cur.Edges)
		}
		if cur.Removed != prev.Nodes-cur.Nodes {
			t.Fatalf("pass %d removed=%d but nodes %d -> %d", i, cur.Removed, prev.Nodes, cur.Nodes)
		}
		totalRemoved += cur.Removed
	}
	if totalRemoved != g.NumNodes() {
		t.Fatalf("total removed %d, want %d", totalRemoved, g.NumNodes())
	}
}

func TestUndirectedPassBound(t *testing.T) {
	// Lemma 4: passes <= log_{1+eps}(n) + O(1).
	g, _ := gen.ChungLu(5000, 20000, 2.2, 4)
	for _, eps := range []float64{0.5, 1, 2} {
		r, err := Undirected(g, eps)
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Log(float64(g.NumNodes()))/math.Log(1+eps) + 2
		if float64(r.Passes) > bound {
			t.Fatalf("eps=%v: %d passes exceeds bound %.1f", eps, r.Passes, bound)
		}
	}
}

// Property: Algorithm 1 achieves its (2+2ε) guarantee against the exact
// flow solver on random graphs, and never reports better than optimal.
func TestUndirectedApproxGuaranteeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := int64(1 + rng.Intn(4*n))
		if maxM := int64(n) * int64(n-1) / 2; m > maxM {
			m = maxM
		}
		g, err := gen.Gnm(n, m, seed)
		if err != nil {
			return false
		}
		exact, err := flow.ExactDensest(g)
		if err != nil {
			return false
		}
		eps := float64(rng.Intn(20)) / 10 // 0 .. 1.9
		r, err := Undirected(g, eps)
		if err != nil {
			return false
		}
		if r.Density > exact.Density+1e-9 {
			return false
		}
		return r.Density >= exact.Density/(2+2*eps)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported set has exactly the reported density.
func TestUndirectedSetDensityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		m := int64(1 + rng.Intn(3*n))
		if maxM := int64(n) * int64(n-1) / 2; m > maxM {
			m = maxM
		}
		g, err := gen.Gnm(n, m, seed)
		if err != nil {
			return false
		}
		r, err := Undirected(g, 0.7)
		if err != nil {
			return false
		}
		d, err := g.SubgraphDensity(r.Set)
		if err != nil {
			return false
		}
		return math.Abs(d-r.Density) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedWeightedMatchesUnweightedOnUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		g, err := gen.Gnm(25, 60, seed)
		if err != nil {
			return false
		}
		a, err := Undirected(g, 0.5)
		if err != nil {
			return false
		}
		// Same graph through the weighted code path (weights all 1):
		// identical thresholds, identical batches, identical result.
		b, err := UndirectedWeighted(g, 0.5)
		if err != nil {
			return false
		}
		if math.Abs(a.Density-b.Density) > 1e-9 || a.Passes != b.Passes {
			return false
		}
		return len(a.Set) == len(b.Set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedWeightedHeavyCore(t *testing.T) {
	// A weighted instance: heavy triangle inside a light ring.
	b := graph.NewBuilder(10)
	for i := 0; i < 10; i++ {
		_ = b.AddWeightedEdge(int32(i), int32((i+1)%10), 0.1)
	}
	_ = b.AddWeightedEdge(0, 2, 10)
	_ = b.AddWeightedEdge(2, 4, 10)
	_ = b.AddWeightedEdge(0, 4, 10)
	g, _ := b.Freeze()
	r, err := UndirectedWeighted(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy triangle density ~ 30/3 = 10 (plus ring fragments); guarantee
	// within 2(1+0.3) of that.
	if r.Density < 10/2.6-1e-9 {
		t.Fatalf("weighted density = %v", r.Density)
	}
}

func TestUndirectedWeightedValidation(t *testing.T) {
	empty, _ := graph.NewBuilder(0).Freeze()
	if _, err := UndirectedWeighted(empty, 0.5); !errors.Is(err, graph.ErrEmptyGraph) {
		t.Fatalf("empty: %v", err)
	}
	g, _ := gen.Clique(3)
	if _, err := UndirectedWeighted(g, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestUndirectedLowerBoundInstanceNeedsManyPasses(t *testing.T) {
	// Lemma 5: the union-of-regular-graphs instance forces more passes
	// than a typical social graph of the same size.
	g, err := gen.RegularUnion(5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Undirected(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if r.Passes < 3 {
		t.Fatalf("lower-bound instance finished in %d passes; want >= 3", r.Passes)
	}
	// The densest block G_k is 2^(k-1)-regular with density 2^(k-2) = 8.
	if r.Density < 8/(2+0.02)-1e-9 {
		t.Fatalf("density %v below guarantee on G_k", r.Density)
	}
}
