package core

import (
	"fmt"
	"sort"

	"densestream/internal/graph"
)

// AtLeastK runs Algorithm 2: find a dense subgraph with at least k nodes.
// Unlike Algorithm 1, each pass removes only the ⌊ε/(1+ε)·|S|⌋ (at least
// one) lowest-degree nodes among the below-threshold candidates Ã(S), so
// some intermediate subgraph lands close to size k. The returned set is a
// (3+3ε)-approximation to ρ*≥k (Theorem 9), improving to (2+2ε) when the
// optimal subgraph has more than k nodes (Lemma 10). The algorithm stops
// early once fewer than k nodes remain (Lemma 11).
func AtLeastK(g *graph.Undirected, k int, eps float64) (*Result, error) {
	return AtLeastKOpts(g, k, eps, Opts{Workers: 1})
}

// AtLeastKOpts is AtLeastK with an explicit execution configuration: the
// candidate scan walks the live-vertex frontier and the decrement pass
// runs push- or pull-directed as in UndirectedOpts; the quota selection
// sort stays sequential on the deterministically merged candidate list.
func AtLeastKOpts(g *graph.Undirected, k int, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if g.Weighted() {
		return nil, fmt.Errorf("core: AtLeastK needs an unweighted graph")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k=%d out of range [1,%d]", k, n)
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	st := newPeelState(g, o.pool(), false)
	if eps < 1 {
		st.compactTilt = 4 // as in UndirectedOpts: slow sweeps repay early rebuilds
	}
	edges := g.NumEdges()
	nodes := n

	bestPass := -1 // -1: no snapshot of size >= k seen yet
	bestDensity := -1.0
	if nodes >= k {
		bestPass = 0
		bestDensity = g.Density()
	}
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: g.Density()}}

	threshold := 2 * (1 + eps)
	frac := eps / (1 + eps)
	pass := 0
	for nodes >= k {
		if err := o.Checkpoint(trace[len(trace)-1]); err != nil {
			return nil, &PartialError{Passes: pass, Trace: trace, Err: err}
		}
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		if err := st.scanCandidates(o, cut); err != nil {
			return nil, &PartialError{Passes: pass - 1, Trace: trace, Err: err}
		}
		candidates := st.batch
		if len(candidates) == 0 {
			return nil, fmt.Errorf("core: pass %d found no candidates (ρ=%v)", pass, rho)
		}
		// Remove the ⌊ε/(1+ε)·|S|⌋ lowest-degree candidates, at least one.
		// Ties break on ORIGINAL vertex id: the unweighted compactor
		// relabels hub-first, so current-id order is not stable across
		// epochs, but the original ids never move — the selected set
		// matches the uncompacted run at any epoch and worker count.
		quota := int(frac * float64(nodes))
		if quota < 1 {
			quota = 1
		}
		if quota > len(candidates) {
			quota = len(candidates)
		}
		deg := st.deg
		sort.Slice(candidates, func(i, j int) bool {
			if deg[candidates[i]] != deg[candidates[j]] {
				return deg[candidates[i]] < deg[candidates[j]]
			}
			return st.orig(candidates[i]) < st.orig(candidates[j])
		})
		batch := candidates[:quota]
		pushVol, degSum := st.markRemoved(batch, pass)
		st.filterLive(pushVol)
		edges = st.decrement(o, batch, pass, edges, pushVol, degSum)
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes >= k && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}
	if bestPass < 0 {
		return nil, fmt.Errorf("core: no intermediate subgraph of size >= %d", k)
	}

	return &Result{
		Set:     survivorsAfter(st.removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}
