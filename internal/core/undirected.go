package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"densestream/internal/graph"
	"densestream/internal/par"
)

// Result is the output of the undirected peeling algorithms.
type Result struct {
	Set     []int32    // S̃, the densest intermediate subgraph
	Density float64    // ρ(S̃)
	Passes  int        // while-loop iterations (graph passes in streaming)
	Trace   []PassStat // per-pass statistics, Trace[0] is the initial state
}

// Undirected runs Algorithm 1 on an unweighted graph: starting from S = V,
// every pass removes A(S) = {i ∈ S : deg_S(i) ≤ 2(1+ε)ρ(S)} and keeps the
// densest intermediate subgraph. It returns a (2+2ε)-approximation in
// O(log_{1+ε} n) passes (Lemmas 3 and 4).
//
// ε = 0 is allowed: the threshold 2ρ(S) is at least the minimum degree
// (min ≤ avg = 2ρ), so at least one node is removed per pass and the
// algorithm still terminates, in up to n passes.
func Undirected(g *graph.Undirected, eps float64) (*Result, error) {
	return UndirectedOpts(g, eps, Opts{Workers: 1})
}

// UndirectedOpts is Undirected with an explicit execution configuration.
// The candidate scan shards the vertex range across workers with
// per-chunk batch buffers merged in index order, and the decrement loop
// shards the removed batch with atomic degree updates, so the result is
// bit-identical to the sequential run for every worker count.
func UndirectedOpts(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if g.Weighted() {
		return nil, fmt.Errorf("core: Undirected needs an unweighted graph; use UndirectedWeighted")
	}
	pool := o.pool()

	alive := make([]bool, n)
	deg := make([]int32, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive[u] = true
			deg[u] = int32(g.Degree(int32(u)))
		}
	})
	removedAt := make([]int, n) // pass in which the node was removed; 0 = never
	edges := g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	col := par.NewCollector(n)
	var batch []int32
	for nodes > 0 {
		if err := o.Checkpoint(trace[len(trace)-1]); err != nil {
			return nil, &PartialError{Passes: pass, Trace: trace, Err: err}
		}
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		col.Reset()
		if err := pool.ForChunksCtx(o.Ctx, n, func(c, lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] && float64(deg[u]) <= cut {
					col.Append(c, int32(u))
				}
			}
		}); err != nil {
			return nil, &PartialError{Passes: pass - 1, Trace: trace, Err: err}
		}
		batch = col.Merge(batch[:0])
		if len(batch) == 0 {
			// Unreachable: a minimum-degree node always satisfies
			// deg ≤ 2ρ ≤ cut. Guard against float surprises regardless.
			return nil, fmt.Errorf("core: pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		pool.ForChunks(len(batch), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := batch[i]
				alive[u] = false
				removedAt[u] = pass
			}
		})
		edges -= pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
			var sub int64
			for i := lo; i < hi; i++ {
				u := batch[i]
				for _, v := range g.Neighbors(u) {
					if alive[v] {
						atomic.AddInt32(&deg[v], -1)
						sub++
					} else if removedAt[v] == pass && u < v {
						// Both endpoints removed this pass; count the edge once.
						sub++
					}
				}
			}
			return sub
		})
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     survivorsAfter(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

// UndirectedWeighted is Algorithm 1 over weighted degrees: the removal
// rule becomes wdeg_S(i) ≤ 2(1+ε)·ρ_w(S) with ρ_w(S) the total remaining
// weight over |S|. Unweighted graphs are accepted (unit weights).
func UndirectedWeighted(g *graph.Undirected, eps float64) (*Result, error) {
	return UndirectedWeightedOpts(g, eps, Opts{Workers: 1})
}

// UndirectedWeightedOpts is UndirectedWeighted with an explicit
// execution configuration. Because float accumulation is order
// sensitive, the decrement loop is pull-based: each chunk owns a vertex
// range and subtracts the weights of that range's just-removed
// neighbors in adjacency order, with per-chunk weight partials merged
// in chunk order — deterministic for every worker count.
func UndirectedWeightedOpts(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	pool := o.pool()

	alive := make([]bool, n)
	wdeg := make([]float64, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive[u] = true
			wdeg[u] = g.WeightedDegree(int32(u))
		}
	})
	removedAt := make([]int, n)
	weight := g.TotalWeight()
	var edges int64 = g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	col := par.NewCollector(n)
	var batch []int32
	wslots := make([]float64, par.NumChunks(n))
	eslots := make([]int64, par.NumChunks(n))
	for nodes > 0 {
		if err := o.Checkpoint(trace[len(trace)-1]); err != nil {
			return nil, &PartialError{Passes: pass, Trace: trace, Err: err}
		}
		pass++
		rho := weight / float64(nodes)
		cut := threshold * rho
		col.Reset()
		if err := pool.ForChunksCtx(o.Ctx, n, func(c, lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] && wdeg[u] <= cut+1e-12 {
					col.Append(c, int32(u))
				}
			}
		}); err != nil {
			return nil, &PartialError{Passes: pass - 1, Trace: trace, Err: err}
		}
		batch = col.Merge(batch[:0])
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: weighted pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		pool.ForChunks(len(batch), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := batch[i]
				alive[u] = false
				removedAt[u] = pass
			}
		})
		// Pull-based decrement: each chunk updates only the weighted
		// degrees of its own vertex range, scanning adjacency in
		// ascending-neighbor order (the same subtraction order a
		// sequential push over the ascending batch produces). An edge
		// between two just-removed nodes is charged once, to its larger
		// endpoint.
		pool.ForChunks(n, func(c, lo, hi int) {
			var wsub float64
			var esub int64
			for v := lo; v < hi; v++ {
				switch {
				case alive[v]:
					ws := g.NeighborWeights(int32(v))
					for i, u := range g.Neighbors(int32(v)) {
						if removedAt[u] == pass {
							w := 1.0
							if ws != nil {
								w = ws[i]
							}
							wdeg[v] -= w
							wsub += w
							esub++
						}
					}
				case removedAt[v] == pass:
					ws := g.NeighborWeights(int32(v))
					for i, u := range g.Neighbors(int32(v)) {
						if removedAt[u] == pass && u < int32(v) {
							w := 1.0
							if ws != nil {
								w = ws[i]
							}
							wsub += w
							esub++
						}
					}
				}
			}
			wslots[c] = wsub
			eslots[c] = esub
		})
		for c := range wslots {
			weight -= wslots[c]
			edges -= eslots[c]
		}
		nodes -= len(batch)
		if weight < 0 && weight > -1e-9 {
			weight = 0 // clamp float drift at the very end
		}
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = weight / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     survivorsAfter(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func checkEps(eps float64) error {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("core: epsilon must be a finite value >= 0, got %v", eps)
	}
	return nil
}

// survivorsAfter returns the nodes still alive strictly after bestPass
// (removedAt == 0 means never removed).
func survivorsAfter(removedAt []int, bestPass int) []int32 {
	var out []int32
	for u, p := range removedAt {
		if p == 0 || p > bestPass {
			out = append(out, int32(u))
		}
	}
	return out
}
