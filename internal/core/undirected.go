package core

import (
	"fmt"
	"math"

	"densestream/internal/graph"
	"densestream/internal/par"
)

// Result is the output of the undirected peeling algorithms.
type Result struct {
	Set     []int32    `json:"set"`     // S̃, the densest intermediate subgraph
	Density float64    `json:"density"` // ρ(S̃)
	Passes  int        `json:"passes"`  // while-loop iterations (graph passes in streaming)
	Trace   []PassStat `json:"trace"`   // per-pass statistics, Trace[0] is the initial state
}

// Undirected runs Algorithm 1 on an unweighted graph: starting from S = V,
// every pass removes A(S) = {i ∈ S : deg_S(i) ≤ 2(1+ε)ρ(S)} and keeps the
// densest intermediate subgraph. It returns a (2+2ε)-approximation in
// O(log_{1+ε} n) passes (Lemmas 3 and 4).
//
// ε = 0 is allowed: the threshold 2ρ(S) is at least the minimum degree
// (min ≤ avg = 2ρ), so at least one node is removed per pass and the
// algorithm still terminates, in up to n passes.
func Undirected(g *graph.Undirected, eps float64) (*Result, error) {
	return UndirectedOpts(g, eps, Opts{Workers: 1})
}

// UndirectedOpts is Undirected with an explicit execution configuration.
// The candidate scan walks the live-vertex frontier in fixed chunks with
// per-chunk batch buffers merged in index order; degree updates run
// push- or pull-directed with owned-lane merges (see peel.go), so the
// result is bit-identical to the sequential run for every worker count.
func UndirectedOpts(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if g.Weighted() {
		return nil, fmt.Errorf("core: Undirected needs an unweighted graph; use UndirectedWeighted")
	}
	st := newPeelState(g, o.pool(), false)
	if eps < 1 {
		st.compactTilt = 4 // slow sweep: many passes repay an early rebuild
	}
	edges := g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	for nodes > 0 {
		if err := o.Checkpoint(trace[len(trace)-1]); err != nil {
			return nil, &PartialError{Passes: pass, Trace: trace, Err: err}
		}
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		pushVol, degSum, err := st.scanRemove(o, cut, pass)
		if err != nil {
			return nil, &PartialError{Passes: pass - 1, Trace: trace, Err: err}
		}
		batch := st.batch
		if len(batch) == 0 {
			// Unreachable: a minimum-degree node always satisfies
			// deg ≤ 2ρ ≤ cut. Guard against float surprises regardless.
			return nil, fmt.Errorf("core: pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		edges = st.decrement(o, batch, pass, edges, pushVol, degSum)
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     survivorsAfter(st.removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

// UndirectedWeighted is Algorithm 1 over weighted degrees: the removal
// rule becomes wdeg_S(i) ≤ 2(1+ε)·ρ_w(S) with ρ_w(S) the total remaining
// weight over |S|. Unweighted graphs are accepted (unit weights).
func UndirectedWeighted(g *graph.Undirected, eps float64) (*Result, error) {
	return UndirectedWeightedOpts(g, eps, Opts{Workers: 1})
}

// UndirectedWeightedOpts is UndirectedWeighted with an explicit
// execution configuration. Because float accumulation is order
// sensitive, the decrement pass is always pull-based and its partials
// are grouped by fixed chunks of the original vertex space (see
// peelState.weightedPull) — deterministic for every worker count, and
// stable across CSR compactions.
func UndirectedWeightedOpts(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if err := o.Begin(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	st := newPeelState(g, o.pool(), true)
	weight := g.TotalWeight()
	var edges int64 = g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	wslots := make([]float64, par.NumChunks(n))
	eslots := make([]int64, par.NumChunks(n))
	for nodes > 0 {
		if err := o.Checkpoint(trace[len(trace)-1]); err != nil {
			return nil, &PartialError{Passes: pass, Trace: trace, Err: err}
		}
		pass++
		rho := weight / float64(nodes)
		cut := threshold * rho
		pushVol, err := st.scanRemoveWeighted(o, cut, pass)
		if err != nil {
			return nil, &PartialError{Passes: pass - 1, Trace: trace, Err: err}
		}
		batch := st.batch
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: weighted pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		st.weightedPull(wslots, eslots)
		for c := range wslots {
			weight -= wslots[c]
			edges -= eslots[c]
		}
		st.filterLive(pushVol)
		st.clearBatch(batch)
		nodes -= len(batch)
		if weight < 0 && weight > -1e-9 {
			weight = 0 // clamp float drift at the very end
		}
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = weight / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
		st.maybeCompactWeighted(o, edges)
	}

	return &Result{
		Set:     survivorsAfter(st.removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func checkEps(eps float64) error {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("core: epsilon must be a finite value >= 0, got %v", eps)
	}
	return nil
}
