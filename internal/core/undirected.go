package core

import (
	"fmt"
	"math"

	"densestream/internal/graph"
)

// Result is the output of the undirected peeling algorithms.
type Result struct {
	Set     []int32    // S̃, the densest intermediate subgraph
	Density float64    // ρ(S̃)
	Passes  int        // while-loop iterations (graph passes in streaming)
	Trace   []PassStat // per-pass statistics, Trace[0] is the initial state
}

// Undirected runs Algorithm 1 on an unweighted graph: starting from S = V,
// every pass removes A(S) = {i ∈ S : deg_S(i) ≤ 2(1+ε)ρ(S)} and keeps the
// densest intermediate subgraph. It returns a (2+2ε)-approximation in
// O(log_{1+ε} n) passes (Lemmas 3 and 4).
//
// ε = 0 is allowed: the threshold 2ρ(S) is at least the minimum degree
// (min ≤ avg = 2ρ), so at least one node is removed per pass and the
// algorithm still terminates, in up to n passes.
func Undirected(g *graph.Undirected, eps float64) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if g.Weighted() {
		return nil, fmt.Errorf("core: Undirected needs an unweighted graph; use UndirectedWeighted")
	}

	alive := make([]bool, n)
	deg := make([]int32, n)
	for u := 0; u < n; u++ {
		alive[u] = true
		deg[u] = int32(g.Degree(int32(u)))
	}
	removedAt := make([]int, n) // pass in which the node was removed; 0 = never
	edges := g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	var batch []int32
	for nodes > 0 {
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		batch = batch[:0]
		for u := 0; u < n; u++ {
			if alive[u] && float64(deg[u]) <= cut {
				batch = append(batch, int32(u))
			}
		}
		if len(batch) == 0 {
			// Unreachable: a minimum-degree node always satisfies
			// deg ≤ 2ρ ≤ cut. Guard against float surprises regardless.
			return nil, fmt.Errorf("core: pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		for _, u := range batch {
			alive[u] = false
			removedAt[u] = pass
		}
		for _, u := range batch {
			for _, v := range g.Neighbors(u) {
				if alive[v] {
					deg[v]--
					edges--
				} else if removedAt[v] == pass && u < v {
					// Both endpoints removed this pass; count the edge once.
					edges--
				}
			}
		}
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     survivorsAfter(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

// UndirectedWeighted is Algorithm 1 over weighted degrees: the removal
// rule becomes wdeg_S(i) ≤ 2(1+ε)·ρ_w(S) with ρ_w(S) the total remaining
// weight over |S|. Unweighted graphs are accepted (unit weights).
func UndirectedWeighted(g *graph.Undirected, eps float64) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}

	alive := make([]bool, n)
	wdeg := make([]float64, n)
	for u := 0; u < n; u++ {
		alive[u] = true
		wdeg[u] = g.WeightedDegree(int32(u))
	}
	removedAt := make([]int, n)
	weight := g.TotalWeight()
	var edges int64 = g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	var batch []int32
	for nodes > 0 {
		pass++
		rho := weight / float64(nodes)
		cut := threshold * rho
		batch = batch[:0]
		for u := 0; u < n; u++ {
			if alive[u] && wdeg[u] <= cut+1e-12 {
				batch = append(batch, int32(u))
			}
		}
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: weighted pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		for _, u := range batch {
			alive[u] = false
			removedAt[u] = pass
		}
		for _, u := range batch {
			ws := g.NeighborWeights(u)
			for i, v := range g.Neighbors(u) {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				if alive[v] {
					wdeg[v] -= w
					weight -= w
					edges--
				} else if removedAt[v] == pass && u < v {
					weight -= w
					edges--
				}
			}
		}
		nodes -= len(batch)
		if weight < 0 && weight > -1e-9 {
			weight = 0 // clamp float drift at the very end
		}
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = weight / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     survivorsAfter(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func checkEps(eps float64) error {
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("core: epsilon must be a finite value >= 0, got %v", eps)
	}
	return nil
}

// survivorsAfter returns the nodes still alive strictly after bestPass
// (removedAt == 0 means never removed).
func survivorsAfter(removedAt []int, bestPass int) []int32 {
	var out []int32
	for u, p := range removedAt {
		if p == 0 || p > bestPass {
			out = append(out, int32(u))
		}
	}
	return out
}
