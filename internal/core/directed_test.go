package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"densestream/internal/flow"
	"densestream/internal/gen"
	"densestream/internal/graph"
)

func completeBipartiteDirected(t *testing.T, ns, nt int) *graph.Directed {
	t.Helper()
	b := graph.NewDirectedBuilder(ns + nt)
	for u := 0; u < ns; u++ {
		for v := 0; v < nt; v++ {
			if err := b.AddEdge(int32(u), int32(ns+v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDirectedCompleteBipartite(t *testing.T) {
	// 4 sources -> 9 targets, all edges present. Optimum S = sources,
	// T = targets, ρ = 36/sqrt(36) = 6, at c = 4/9.
	g := completeBipartiteDirected(t, 4, 9)
	r, err := Directed(g, 4.0/9.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density < 6/(2+0.2)-1e-9 {
		t.Fatalf("density = %v, below guarantee", r.Density)
	}
	d, err := g.SubgraphDensity(r.S, r.T)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-r.Density) > 1e-9 {
		t.Fatalf("set density %v != reported %v", d, r.Density)
	}
}

func TestDirectedValidation(t *testing.T) {
	g := graph.MustFromDirectedEdges(2, [][2]int32{{0, 1}})
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Directed(g, c, 0.5); err == nil {
			t.Fatalf("c=%v accepted", c)
		}
	}
	if _, err := Directed(g, 1, -0.5); err == nil {
		t.Fatal("negative eps accepted")
	}
	empty, _ := graph.NewDirectedBuilder(0).Freeze()
	if _, err := Directed(empty, 1, 0.5); !errors.Is(err, graph.ErrEmptyGraph) {
		t.Fatalf("empty: %v", err)
	}
}

func TestDirectedEdgeless(t *testing.T) {
	g, _ := graph.NewDirectedBuilder(3).Freeze()
	r, err := Directed(g, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density != 0 {
		t.Fatalf("density = %v", r.Density)
	}
}

func TestDirectedTraceConsistency(t *testing.T) {
	g, err := gen.ChungLuDirected(1000, 5000, 2.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Directed(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != r.Passes+1 {
		t.Fatalf("trace %d, passes %d", len(r.Trace), r.Passes)
	}
	for i := 1; i < len(r.Trace); i++ {
		cur, prev := r.Trace[i], r.Trace[i-1]
		switch cur.PeeledSide {
		case 'S':
			if cur.SizeS >= prev.SizeS || cur.SizeT != prev.SizeT {
				t.Fatalf("pass %d S-peel inconsistent: %+v -> %+v", i, prev, cur)
			}
		case 'T':
			if cur.SizeT >= prev.SizeT || cur.SizeS != prev.SizeS {
				t.Fatalf("pass %d T-peel inconsistent: %+v -> %+v", i, prev, cur)
			}
		default:
			t.Fatalf("pass %d has side %q", i, cur.PeeledSide)
		}
		if cur.Edges > prev.Edges {
			t.Fatalf("pass %d edges grew", i)
		}
	}
	last := r.Trace[len(r.Trace)-1]
	if last.SizeS != 0 && last.SizeT != 0 {
		t.Fatalf("final state not empty: %+v", last)
	}
}

func TestDirectedPassBound(t *testing.T) {
	g, err := gen.ChungLuDirected(3000, 15000, 2.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 1, 2} {
		r, err := Directed(g, 1, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 13: each pass shrinks S or T by 1/(1+eps), so passes are
		// at most 2·log_{1+ε}(n) + O(1).
		bound := 2*math.Log(float64(g.NumNodes()))/math.Log(1+eps) + 3
		if float64(r.Passes) > bound {
			t.Fatalf("eps=%v: %d passes > bound %.1f", eps, r.Passes, bound)
		}
	}
}

// Property: with the true optimal c, Algorithm 3 meets its (2+2ε) bound
// against the directed brute force on tiny graphs.
func TestDirectedApproxGuaranteeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5) // brute force over S,T pairs: keep tiny
		m := int64(2 + rng.Intn(2*n))
		g, err := gen.GnmDirected(n, m, seed)
		if err != nil {
			return false
		}
		if g.NumEdges() == 0 {
			return true
		}
		sOpt, tOpt, optD, err := flow.BruteForceDirectedDensest(g)
		if err != nil {
			return false
		}
		c := float64(len(sOpt)) / float64(len(tOpt))
		eps := 0.1 + float64(rng.Intn(10))/10
		r, err := Directed(g, c, eps)
		if err != nil {
			return false
		}
		if r.Density > optD+1e-9 {
			return false
		}
		return r.Density >= optD/(2+2*eps)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedSweepFindsPlantedBlock(t *testing.T) {
	// Background + dense 20->30 block; the sweep should find a pair with
	// density near the block's.
	b := graph.NewDirectedBuilder(500)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1500; i++ {
		u, v := int32(rng.Intn(500)), int32(rng.Intn(500))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	for u := 0; u < 20; u++ {
		for v := 20; v < 50; v++ {
			_ = b.AddEdge(int32(u), int32(v))
		}
	}
	g, _ := b.Freeze()
	sweep, err := DirectedSweep(g, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	blockDensity := 600.0 / math.Sqrt(20*30) // ~24.5
	if sweep.Best.Density < blockDensity/(2+1)/2 {
		t.Fatalf("sweep best %v too far below planted block %v", sweep.Best.Density, blockDensity)
	}
	if len(sweep.Points) < 3 {
		t.Fatalf("sweep tried only %d values of c", len(sweep.Points))
	}
	// Points must be in increasing c order and include c < 1 and c > 1.
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].C <= sweep.Points[i-1].C {
			t.Fatalf("sweep points out of order at %d", i)
		}
	}
	if sweep.Points[0].C >= 1 || sweep.Points[len(sweep.Points)-1].C <= 1 {
		t.Fatalf("sweep range [%v, %v] does not straddle 1",
			sweep.Points[0].C, sweep.Points[len(sweep.Points)-1].C)
	}
}

func TestDirectedSweepValidation(t *testing.T) {
	g := graph.MustFromDirectedEdges(2, [][2]int32{{0, 1}})
	if _, err := DirectedSweep(g, 1, 0.5); err == nil {
		t.Fatal("delta=1 accepted")
	}
	if _, err := DirectedSweep(g, 0.5, 0.5); err == nil {
		t.Fatal("delta<1 accepted")
	}
	empty, _ := graph.NewDirectedBuilder(0).Freeze()
	if _, err := DirectedSweep(empty, 2, 0.5); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestDirectedAlternatesSides(t *testing.T) {
	// With c=1 on an asymmetric graph the algorithm should peel both sides
	// at least once (the "alternate nature" visible in Figure 6.5).
	g, err := gen.ChungLuDirected(500, 3000, 2.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Directed(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sawS, sawT bool
	for _, st := range r.Trace[1:] {
		if st.PeeledSide == 'S' {
			sawS = true
		}
		if st.PeeledSide == 'T' {
			sawT = true
		}
	}
	if !sawS || !sawT {
		t.Fatalf("expected both sides peeled; sawS=%v sawT=%v", sawS, sawT)
	}
}
