package core
