package core

import "densestream/internal/par"

// Opts configures the execution of the peeling engines.
type Opts struct {
	// Workers is the number of workers used for the sharded candidate
	// scans and degree-decrement loops; <= 0 means
	// runtime.GOMAXPROCS(0). Every worker count produces bit-identical
	// results: the work decomposition is fixed by the graph size, and
	// per-chunk results merge in chunk order (see internal/par).
	Workers int
}

func (o Opts) pool() *par.Pool { return par.New(o.Workers) }
