package core

import (
	"context"

	"densestream/internal/par"
)

// Opts configures the execution of the peeling engines.
type Opts struct {
	// Workers is the number of workers used for the sharded candidate
	// scans and degree-decrement loops; <= 0 means
	// runtime.GOMAXPROCS(0). Every worker count produces bit-identical
	// results: the work decomposition is fixed by the graph size, and
	// per-chunk results merge in chunk order (see internal/par).
	Workers int

	// Ctx, when non-nil, bounds the run: cancellation or a deadline
	// aborts the peeling loop within one pass, returning a PartialError
	// that wraps the context's error and carries the trace so far.
	Ctx context.Context

	// Progress, when non-nil, is invoked at the start of each pass with
	// the preceding pass's trace entry (the first call sees the initial
	// state). Returning false stops the run with a PartialError
	// wrapping ErrStopped. The hook runs on the driver goroutine —
	// keep it cheap.
	Progress func(PassStat) bool

	// hooks are package-internal observation points on the layout
	// machinery (push/pull choice, CSR compaction); only the in-package
	// parity tests set them.
	hooks peelHooks
}

func (o Opts) pool() *par.Pool { return par.New(o.Workers) }
