package core

import (
	"math"
	"reflect"
	"testing"

	"densestream/internal/gen"
	"densestream/internal/graph"
)

// The engines promise bit-identical results for every worker count.
// These tests pin that promise inside the package (the public-API
// variant lives in the root package); run with -race to exercise the
// sharded scans and atomic decrements.

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Density != b.Density || a.Passes != b.Passes {
		t.Fatalf("%s: density/passes %v/%d vs %v/%d", label, a.Density, a.Passes, b.Density, b.Passes)
	}
	if !reflect.DeepEqual(a.Set, b.Set) {
		t.Fatalf("%s: sets differ: %v vs %v", label, a.Set, b.Set)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("%s: traces differ", label)
	}
}

func TestUndirectedOptsWorkerCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		g, err := gen.ChungLu(3000, 15000, 2.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 0.5, 1} {
			ref, err := UndirectedOpts(g, eps, Opts{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 8} {
				got, err := UndirectedOpts(g, eps, Opts{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "undirected", ref, got)
			}
		}
	}
}

func TestUndirectedWeightedOptsWorkerCountInvariance(t *testing.T) {
	g0, err := gen.ChungLu(2500, 10000, 2.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(g0.NumNodes())
	w := 0.0
	g0.Edges(func(u, v int32, _ float64) bool {
		w += 0.37
		return b.AddWeightedEdge(u, v, 0.1+math.Mod(w, 3)) == nil
	})
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := UndirectedWeightedOpts(g, 0.5, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := UndirectedWeightedOpts(g, 0.5, Opts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "weighted", ref, got)
	}
}

func TestAtLeastKOptsWorkerCountInvariance(t *testing.T) {
	g, err := gen.ChungLu(3000, 12000, 2.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 50, 1000} {
		ref, err := AtLeastKOpts(g, k, 0.5, Opts{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := AtLeastKOpts(g, k, 0.5, Opts{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "atleastk", ref, got)
	}
}

func TestDirectedOptsWorkerCountInvariance(t *testing.T) {
	g, err := gen.ChungLuDirected(3000, 15000, 2.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.5, 1, 2} {
		ref, err := DirectedOpts(g, c, 0.5, Opts{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DirectedOpts(g, c, 0.5, Opts{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Density != got.Density || ref.Passes != got.Passes {
			t.Fatalf("c=%v: density/passes differ", c)
		}
		if !reflect.DeepEqual(ref.S, got.S) || !reflect.DeepEqual(ref.T, got.T) {
			t.Fatalf("c=%v: S/T differ", c)
		}
		if !reflect.DeepEqual(ref.Trace, got.Trace) {
			t.Fatalf("c=%v: traces differ", c)
		}
	}
}

// The refactor must not change what the sequential engine computes: the
// default entry points still agree with a straight re-derivation of the
// per-pass rule on a small instance.
func TestUndirectedOptsMatchesLegacySemantics(t *testing.T) {
	g, err := gen.Gnm(200, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Undirected(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.SubgraphDensity(r.Set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-r.Density) > 1e-9 {
		t.Fatalf("reported density %v but set has %v", r.Density, d)
	}
}
