package core

import (
	"math/rand"
	"reflect"
	"testing"

	"densestream/internal/graph"
)

// The random-graph half of the relabel property sweep: for arbitrary
// graphs (not just the structured parity shapes) the degree-ordered
// layout engines must emit Solutions reflect.DeepEqual to the
// id-ordered reference implementations at workers 1–8. Sizes straddle
// the compaction floor so both the never-compacted and the
// relabeled-epoch paths run.

func randomUndirected(t *testing.T, rng *rand.Rand, n int) *graph.Undirected {
	t.Helper()
	b := graph.NewBuilder(n)
	m := n/2 + rng.Intn(4*n)
	for e := 0; e < m; e++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRandomGraphPeelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(314159))
	for trial, n := range []int{60, 300, 1500, 3000, 5000} {
		g := randomUndirected(t, rng, n)
		if g.NumEdges() == 0 {
			continue
		}
		eps := []float64{0, 0.5, 2}[trial%3]
		want, err := referenceUndirected(g, eps, Opts{Workers: 1})
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		k := 1 + rng.Intn(n/2)
		wantK, err := referenceAtLeastK(g, k, eps+0.1, Opts{Workers: 1})
		if err != nil {
			t.Fatalf("n=%d: reference AtLeastK: %v", n, err)
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := UndirectedOpts(g, eps, Opts{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d eps=%g workers=%d: random-graph divergence", n, eps, workers)
			}
			gotK, err := AtLeastKOpts(g, k, eps+0.1, Opts{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d k=%d workers=%d: %v", n, k, workers, err)
			}
			if !reflect.DeepEqual(gotK, wantK) {
				t.Fatalf("n=%d k=%d eps=%g workers=%d: random-graph AtLeastK divergence", n, k, eps+0.1, workers)
			}
		}
	}
}

func TestRandomGraphDirectedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(161803))
	for _, n := range []int{80, 1200, 4000} {
		b := graph.NewDirectedBuilder(n)
		m := n + rng.Intn(4*n)
		for e := 0; e < m; e++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() == 0 {
			continue
		}
		for _, c := range []float64{0.5, 1} {
			want, err := referenceDirected(g, c, 0.2, Opts{Workers: 1})
			if err != nil {
				t.Fatalf("n=%d c=%g: reference: %v", n, c, err)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := DirectedOpts(g, c, 0.2, Opts{Workers: workers})
				if err != nil {
					t.Fatalf("n=%d c=%g workers=%d: %v", n, c, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d c=%g workers=%d: random-graph directed divergence", n, c, workers)
				}
			}
		}
	}
}
