package core

import (
	"densestream/internal/graph"
	"densestream/internal/par"
)

// directedState is the peelState analogue for Algorithm 3: two live
// frontiers (S and T) over one shared, possibly compacted, directed
// CSR. The same two-space id discipline applies — per-pass state is
// current-space, removal passes are recorded in original space, and
// compaction relabels order-preservingly.
type directedState struct {
	pool  *par.Pool
	g     *graph.Directed
	n     int
	origN int

	origOf                     []int32
	removedPassS, removedPassT []int32 // current space; 0 = alive on that side
	removedAtS, removedAtT     []int32 // original space
	liveS, liveT               []int32 // ascending current ids per side
	outdeg, indeg              []int32 // |E(u, T)| and |E(S, v)|
	outRowVolS                 int64   // Σ out-row length over liveS
	inRowVolT                  int64   // Σ in-row length over liveT

	col    *par.Collector
	batch  []int32
	router *par.Router
	cs     [2]graph.DirectedCompactScratch
	csTurn int
	aliveS []bool // compaction-time side filters, rebuilt on demand
	aliveT []bool
	union  []int32
}

func newDirectedState(g *graph.Directed, pool *par.Pool) *directedState {
	n := g.NumNodes()
	st := &directedState{
		pool: pool, g: g, n: n, origN: n,
		removedPassS: make([]int32, n),
		removedPassT: make([]int32, n),
		removedAtS:   make([]int32, n),
		removedAtT:   make([]int32, n),
		liveS:        make([]int32, n),
		liveT:        make([]int32, n),
		outdeg:       make([]int32, n),
		indeg:        make([]int32, n),
		outRowVolS:   g.NumEdges(),
		inRowVolT:    g.NumEdges(),
		col:          par.NewCollector(n),
	}
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			st.liveS[u] = int32(u)
			st.liveT[u] = int32(u)
			st.outdeg[u] = int32(g.OutDegree(int32(u)))
			st.indeg[u] = int32(g.InDegree(int32(u)))
		}
	})
	return st
}

func (st *directedState) orig(u int32) int32 {
	if st.origOf == nil {
		return u
	}
	return st.origOf[u]
}

// scanSide collects the live vertices of one side whose degree is at
// most cut into st.batch, ascending and worker-invariant.
func (st *directedState) scanSide(o Opts, live []int32, deg []int32, cut float64) error {
	st.col.Reset()
	if err := st.pool.ForChunksCtx(o.Ctx, len(live), func(c, lo, hi int) {
		for _, u := range live[lo:hi] {
			if float64(deg[u]) <= cut {
				st.col.Append(c, u)
			}
		}
	}); err != nil {
		return err
	}
	st.batch = st.col.Merge(st.batch[:0])
	return nil
}

// peelS removes st.batch from S and updates the in-degrees of the
// surviving T side, returning the new E(S, T) count. Direction choice
// as in peelState.decrement: push walks the batch's out-rows, pull
// recounts every live T vertex's surviving in-degree.
func (st *directedState) peelS(o Opts, pass int, edges int64) int64 {
	g, batch := st.g, st.batch
	p32 := int32(pass)
	pushVol := st.pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
		var vol int64
		for _, u := range batch[lo:hi] {
			st.removedPassS[u] = p32
			st.removedAtS[st.orig(u)] = p32
			vol += int64(g.OutDegree(u))
		}
		return vol
	})
	st.liveS = filterSide(st.liveS, st.removedPassS)
	st.outRowVolS -= pushVol
	if pull := st.compactReady() || pushVol > st.inRowVolT; pull {
		if o.hooks.mode != nil {
			o.hooks.mode(pass, true)
		}
		if st.compactReady() {
			// Fused pull+compact: the compacted in-row lengths ARE the
			// surviving in-degrees (see compact). A due compaction also
			// forces pull — the rebuild scans the surviving rows anyway.
			st.compact(o)
			return st.g.NumEdges()
		}
		rpS, indeg, liveT := st.removedPassS, st.indeg, st.liveT
		return st.pool.SumInt64(len(liveT), func(_, lo, hi int) int64 {
			var s int64
			for _, v := range liveT[lo:hi] {
				cnt := int32(0)
				for _, u := range g.InNeighbors(v) {
					if rpS[u] == 0 {
						cnt++
					}
				}
				indeg[v] = cnt
				s += int64(cnt)
			}
			return s
		})
	}
	if o.hooks.mode != nil {
		o.hooks.mode(pass, false)
	}
	return edges - st.pushSide(batch, st.removedPassT, st.indeg, g.OutNeighbors)
}

// peelT is the mirror image of peelS.
func (st *directedState) peelT(o Opts, pass int, edges int64) int64 {
	g, batch := st.g, st.batch
	p32 := int32(pass)
	pushVol := st.pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
		var vol int64
		for _, v := range batch[lo:hi] {
			st.removedPassT[v] = p32
			st.removedAtT[st.orig(v)] = p32
			vol += int64(g.InDegree(v))
		}
		return vol
	})
	st.liveT = filterSide(st.liveT, st.removedPassT)
	st.inRowVolT -= pushVol
	if pull := st.compactReady() || pushVol > st.outRowVolS; pull {
		if o.hooks.mode != nil {
			o.hooks.mode(pass, true)
		}
		if st.compactReady() {
			st.compact(o)
			return st.g.NumEdges()
		}
		rpT, outdeg, liveS := st.removedPassT, st.outdeg, st.liveS
		return st.pool.SumInt64(len(liveS), func(_, lo, hi int) int64 {
			var s int64
			for _, u := range liveS[lo:hi] {
				cnt := int32(0)
				for _, v := range g.OutNeighbors(u) {
					if rpT[v] == 0 {
						cnt++
					}
				}
				outdeg[u] = cnt
				s += int64(cnt)
			}
			return s
		})
	}
	if o.hooks.mode != nil {
		o.hooks.mode(pass, false)
	}
	return edges - st.pushSide(batch, st.removedPassS, st.outdeg, g.InNeighbors)
}

// pushSide walks the removed batch's cross rows and decrements the
// opposite side's surviving degrees — owned-lane routed past one
// worker, so no atomics — returning the number of edges dropped.
func (st *directedState) pushSide(batch []int32, rpOther []int32, degOther []int32, rows func(int32) []int32) int64 {
	if st.pool.Workers() == 1 {
		var sub int64
		for _, u := range batch {
			for _, v := range rows(u) {
				if rpOther[v] == 0 {
					degOther[v]--
					sub++
				}
			}
		}
		return sub
	}
	if st.router == nil {
		st.router = par.NewRouter(st.origN)
	}
	st.router.Begin(par.NumChunks(len(batch)))
	sub := st.pool.SumInt64(len(batch), func(c, lo, hi int) int64 {
		var s int64
		for _, u := range batch[lo:hi] {
			for _, v := range rows(u) {
				if rpOther[v] == 0 {
					st.router.Route(c, v)
					s++
				}
			}
		}
		return s
	})
	st.router.Drain(st.pool, func(_ int, ids []int32) {
		for _, v := range ids {
			degOther[v]--
		}
	})
	return sub
}

// filterSide drops removed vertices from one side's frontier in place.
func filterSide(live []int32, removedPass []int32) []int32 {
	out := live[:0]
	for _, u := range live {
		if removedPass[u] == 0 {
			out = append(out, u)
		}
	}
	return out
}

// compactReady reports whether the two live sides have shrunk enough
// to rebuild the directed CSR: together they cover at most half the
// current vertex space. An emptied side means the run is about to
// end, so no rebuild can pay off.
func (st *directedState) compactReady() bool {
	return st.n >= compactMinNodes && len(st.liveS) > 0 && len(st.liveT) > 0 &&
		len(st.liveS)+len(st.liveT) <= st.n/2
}

// compact rebuilds the directed CSR around the union of the two live
// sides. Both degree arrays are read off the compacted row lengths —
// an out-row holds exactly the surviving T out-neighbors, an in-row
// the surviving S in-neighbors — which is what lets the pull pass fuse
// into the rebuild.
func (st *directedState) compact(o Opts) {
	prevN := st.n
	// Union of two ascending frontiers, ascending.
	st.union = st.union[:0]
	i, j := 0, 0
	for i < len(st.liveS) || j < len(st.liveT) {
		switch {
		case j >= len(st.liveT) || (i < len(st.liveS) && st.liveS[i] < st.liveT[j]):
			st.union = append(st.union, st.liveS[i])
			i++
		case i >= len(st.liveS) || st.liveS[i] > st.liveT[j]:
			st.union = append(st.union, st.liveT[j])
			j++
		default:
			st.union = append(st.union, st.liveS[i])
			i++
			j++
		}
	}
	keep := st.union
	if cap(st.aliveS) < st.n {
		st.aliveS = make([]bool, st.n)
		st.aliveT = make([]bool, st.n)
	}
	aliveS, aliveT := st.aliveS[:st.n], st.aliveT[:st.n]
	for u := 0; u < st.n; u++ {
		aliveS[u] = st.removedPassS[u] == 0
		aliveT[u] = st.removedPassT[u] == 0
	}
	ng := st.g.CompactInto(keep, aliveS, aliveT, &st.cs[st.csTurn])
	st.csTurn ^= 1

	nn := len(keep)
	origOf := make([]int32, nn)
	rpS := make([]int32, nn)
	rpT := make([]int32, nn)
	outdeg := make([]int32, nn)
	indeg := make([]int32, nn)
	liveS, liveT := st.liveS[:0], st.liveT[:0]
	for i, u := range keep {
		origOf[i] = st.orig(u)
		rpS[i] = st.removedPassS[u]
		rpT[i] = st.removedPassT[u]
		outdeg[i] = int32(ng.OutDegree(int32(i)))
		indeg[i] = int32(ng.InDegree(int32(i)))
		if rpS[i] == 0 {
			liveS = append(liveS, int32(i))
		}
		if rpT[i] == 0 {
			liveT = append(liveT, int32(i))
		}
	}
	st.g = ng
	st.n = nn
	st.origOf = origOf
	st.removedPassS, st.removedPassT = rpS, rpT
	st.outdeg, st.indeg = outdeg, indeg
	st.liveS, st.liveT = liveS, liveT
	// Compacted rows hold exactly the surviving cross edges on both
	// views, so both live row volumes equal the compacted edge count.
	st.outRowVolS = ng.NumEdges()
	st.inRowVolT = ng.NumEdges()
	if o.hooks.compacted != nil {
		o.hooks.compacted(nn, prevN)
	}
}
