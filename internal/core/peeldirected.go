package core

import (
	"densestream/internal/graph"
	"densestream/internal/par"
)

// directedState is the peelState analogue for Algorithm 3: two live
// frontiers (S and T) over one shared, possibly compacted, directed
// CSR. The same two-space id discipline applies — per-pass state is
// current-space, removal passes are recorded in original space — and
// side membership lives in packed bitsets so the pull recount's
// membership gathers stay cache-resident. Compaction relabels
// hub-first by total surviving cross degree, composing origOf through
// the permutation; all directed per-pass state is integral, so the
// reordering never reaches the emitted Solutions.
type directedState struct {
	pool  *par.Pool
	g     *graph.Directed
	n     int
	origN int

	origOf                 []int32
	aliveS, aliveT         graph.Bitset // current space; bit set = alive on that side
	removedAtS, removedAtT []int32      // original space; 0 = never removed
	liveS, liveT           []int32      // ascending current ids per side
	outdeg, indeg          []int32      // |E(u, T)| and |E(S, v)|
	outRowVolS             int64        // Σ out-row length over liveS
	inRowVolT              int64        // Σ in-row length over liveT

	col      *par.Collector
	batch    []int32
	router   *par.Router
	sweep    par.Sweeper
	volSlots []int64
	degSlots []int64
	cs       [2]graph.DirectedCompactScratch
	csTurn   int
	union    []int32
}

func newDirectedState(g *graph.Directed, pool *par.Pool) *directedState {
	n := g.NumNodes()
	st := &directedState{
		pool: pool, g: g, n: n, origN: n,
		aliveS:     graph.NewBitset(n),
		aliveT:     graph.NewBitset(n),
		removedAtS: make([]int32, n),
		removedAtT: make([]int32, n),
		liveS:      make([]int32, n),
		liveT:      make([]int32, n),
		outdeg:     make([]int32, n),
		indeg:      make([]int32, n),
		outRowVolS: g.NumEdges(),
		inRowVolT:  g.NumEdges(),
		col:        par.NewCollector(n),
		volSlots:   make([]int64, par.NumChunks(n)),
		degSlots:   make([]int64, par.NumChunks(n)),
	}
	st.aliveS.Fill(n)
	st.aliveT.Fill(n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			st.liveS[u] = int32(u)
			st.liveT[u] = int32(u)
			st.outdeg[u] = int32(g.OutDegree(int32(u)))
			st.indeg[u] = int32(g.InDegree(int32(u)))
		}
	})
	return st
}

func (st *directedState) orig(u int32) int32 {
	if st.origOf == nil {
		return u
	}
	return st.origOf[u]
}

// scanSideRemove is the fused per-pass sweep for one side: one batched
// walk collects the below-cut vertices (ascending, chunk-merged),
// records their removal pass in original space, filters them out of
// the side's frontier in place, and accumulates the batch's cross row
// volume (the push cost) and live-degree sum (exactly the E(S, T)
// edges the pass removes, since a cross degree counts only opposite-
// side-alive targets). Side bit stamps apply after the sweep, on the
// driver goroutine — bitset words are shared between neighboring ids.
func (st *directedState) scanSideRemove(o Opts, pass int, live, deg []int32, rowLen func(int32) int, alive graph.Bitset, removedAt []int32, cut float64) ([]int32, int64, int64, error) {
	st.col.Reset()
	origOf := st.origOf
	p32 := int32(pass)
	icut := cutToInt(cut)
	chunks := par.NumChunks(len(live))
	nl, err := st.sweep.Sweep(o.Ctx, st.pool, live, func(c int, block []int32) int {
		var vol, ds int64
		w := 0
		for _, u := range block {
			if deg[u] > icut {
				block[w] = u
				w++
				continue
			}
			st.col.Append(c, u)
			ou := u
			if origOf != nil {
				ou = origOf[u]
			}
			removedAt[ou] = p32
			vol += int64(rowLen(u))
			ds += int64(deg[u])
		}
		st.volSlots[c] = vol
		st.degSlots[c] = ds
		return w
	})
	if err != nil {
		return live, 0, 0, err
	}
	st.batch = st.col.Merge(st.batch[:0])
	for _, u := range st.batch {
		alive.Clear(u)
	}
	var pushVol, degSum int64
	for c := 0; c < chunks; c++ {
		pushVol += st.volSlots[c]
		degSum += st.degSlots[c]
	}
	return nl, pushVol, degSum, nil
}

// scanRemoveS runs the fused sweep over the S side.
func (st *directedState) scanRemoveS(o Opts, pass int, cut float64) (pushVol, degSum int64, err error) {
	live, pushVol, degSum, err := st.scanSideRemove(o, pass, st.liveS, st.outdeg, st.g.OutDegree, st.aliveS, st.removedAtS, cut)
	if err != nil {
		return 0, 0, err
	}
	st.liveS = live
	st.outRowVolS -= pushVol
	return pushVol, degSum, nil
}

// scanRemoveT runs the fused sweep over the T side.
func (st *directedState) scanRemoveT(o Opts, pass int, cut float64) (pushVol, degSum int64, err error) {
	live, pushVol, degSum, err := st.scanSideRemove(o, pass, st.liveT, st.indeg, st.g.InDegree, st.aliveT, st.removedAtT, cut)
	if err != nil {
		return 0, 0, err
	}
	st.liveT = live
	st.inRowVolT -= pushVol
	return pushVol, degSum, nil
}

// peelS applies the already-scanned S batch to the T side's degrees
// and returns the new E(S, T) count. Direction choice as in
// peelState.decrement: push scatters along the batch's out-rows, pull
// recounts every live T vertex's surviving in-degree with the
// branch-free S-alive bit gather. The push count needs no loop at all:
// the batch's live-degree sum IS the removed edge count.
func (st *directedState) peelS(o Opts, pass int, edges, pushVol, degSum int64) int64 {
	g := st.g
	if pull := st.compactReady() || pushVol > st.inRowVolT; pull {
		if o.hooks.mode != nil {
			o.hooks.mode(pass, true)
		}
		if st.compactReady() {
			// Fused pull+compact: the compacted in-row lengths ARE the
			// surviving in-degrees (see compact). A due compaction also
			// forces pull — the rebuild scans the surviving rows anyway.
			st.compact(o)
			return st.g.NumEdges()
		}
		aliveS, indeg, liveT := st.aliveS, st.indeg, st.liveT
		return st.pool.SumInt64(len(liveT), func(_, lo, hi int) int64 {
			var s int64
			for _, v := range liveT[lo:hi] {
				cnt := int32(0)
				for _, u := range g.InNeighbors(v) {
					cnt += aliveS.Bit(u)
				}
				indeg[v] = cnt
				s += int64(cnt)
			}
			return s
		})
	}
	if o.hooks.mode != nil {
		o.hooks.mode(pass, false)
	}
	st.pushSide(st.batch, st.indeg, g.OutNeighbors)
	return edges - degSum
}

// peelT is the mirror image of peelS.
func (st *directedState) peelT(o Opts, pass int, edges, pushVol, degSum int64) int64 {
	g := st.g
	if pull := st.compactReady() || pushVol > st.outRowVolS; pull {
		if o.hooks.mode != nil {
			o.hooks.mode(pass, true)
		}
		if st.compactReady() {
			st.compact(o)
			return st.g.NumEdges()
		}
		aliveT, outdeg, liveS := st.aliveT, st.outdeg, st.liveS
		return st.pool.SumInt64(len(liveS), func(_, lo, hi int) int64 {
			var s int64
			for _, u := range liveS[lo:hi] {
				cnt := int32(0)
				for _, v := range g.OutNeighbors(u) {
					cnt += aliveT.Bit(v)
				}
				outdeg[u] = cnt
				s += int64(cnt)
			}
			return s
		})
	}
	if o.hooks.mode != nil {
		o.hooks.mode(pass, false)
	}
	st.pushSide(st.batch, st.outdeg, g.InNeighbors)
	return edges - degSum
}

// pushSide scatters the removed batch's cross rows into the opposite
// side's degree array. The decrements are blind — dead targets' slots
// are stale by construction and never read — so the loop carries no
// membership gather; past one worker the full row contents ride the
// owned-lane router (no atomics), corrupting exactly the same dead
// slots the sequential path does.
func (st *directedState) pushSide(batch []int32, degOther []int32, rows func(int32) []int32) {
	if st.pool.Workers() == 1 {
		for _, u := range batch {
			for _, v := range rows(u) {
				degOther[v]--
			}
		}
		return
	}
	if st.router == nil {
		st.router = par.NewRouter(st.origN)
	}
	st.router.Begin(par.NumChunks(len(batch)))
	st.pool.ForChunks(len(batch), func(c, lo, hi int) {
		for _, u := range batch[lo:hi] {
			for _, v := range rows(u) {
				st.router.Route(c, v)
			}
		}
	})
	st.router.Drain(st.pool, func(_ int, ids []int32) {
		for _, v := range ids {
			degOther[v]--
		}
	})
}

// compactReady reports whether the two live sides have shrunk enough
// to rebuild the directed CSR: together they cover at most half the
// current vertex space. An emptied side means the run is about to
// end, so no rebuild can pay off.
func (st *directedState) compactReady() bool {
	return st.n >= compactMinNodes && len(st.liveS) > 0 && len(st.liveT) > 0 &&
		len(st.liveS)+len(st.liveT) <= st.n/2
}

// compact rebuilds the directed CSR around the union of the two live
// sides through the degree-ordered relabel (total surviving cross
// degree, hub-first). Both degree arrays are read off the compacted
// row lengths — an out-row holds exactly the surviving T
// out-neighbors, an in-row the surviving S in-neighbors — which is
// what lets the pull pass fuse into the rebuild. The side frontiers
// and bitsets are rebuilt in the new id space from the returned
// permutation.
func (st *directedState) compact(o Opts) {
	prevN := st.n
	// Union of two ascending frontiers, ascending.
	st.union = st.union[:0]
	i, j := 0, 0
	for i < len(st.liveS) || j < len(st.liveT) {
		switch {
		case j >= len(st.liveT) || (i < len(st.liveS) && st.liveS[i] < st.liveT[j]):
			st.union = append(st.union, st.liveS[i])
			i++
		case i >= len(st.liveS) || st.liveS[i] > st.liveT[j]:
			st.union = append(st.union, st.liveT[j])
			j++
		default:
			st.union = append(st.union, st.liveS[i])
			i++
			j++
		}
	}
	keep := st.union
	ng, order := st.g.CompactInto(keep, st.aliveS, st.aliveT, &st.cs[st.csTurn])
	st.csTurn ^= 1

	nn := len(keep)
	origOf := make([]int32, nn)
	outdeg := make([]int32, nn)
	indeg := make([]int32, nn)
	liveS, liveT := st.liveS[:0], st.liveT[:0]
	for r := 0; r < nn; r++ {
		u := order[r]
		origOf[r] = st.orig(u)
		outdeg[r] = int32(ng.OutDegree(int32(r)))
		indeg[r] = int32(ng.InDegree(int32(r)))
		if st.aliveS.Test(u) {
			liveS = append(liveS, int32(r))
		}
		if st.aliveT.Test(u) {
			liveT = append(liveT, int32(r))
		}
	}
	// The old-space bits are fully consumed above; rewrite both sets
	// for the new space.
	st.aliveS.Zero()
	st.aliveT.Zero()
	for _, u := range liveS {
		st.aliveS.Set(u)
	}
	for _, u := range liveT {
		st.aliveT.Set(u)
	}
	st.g = ng
	st.n = nn
	st.origOf = origOf
	st.outdeg, st.indeg = outdeg, indeg
	st.liveS, st.liveT = liveS, liveT
	// Compacted rows hold exactly the surviving cross edges on both
	// views, so both live row volumes equal the compacted edge count.
	st.outRowVolS = ng.NumEdges()
	st.inRowVolT = ng.NumEdges()
	if o.hooks.compacted != nil {
		o.hooks.compacted(nn, prevN)
	}
	if o.hooks.relabeled != nil {
		o.hooks.relabeled(nn)
	}
}
