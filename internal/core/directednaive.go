package core

import (
	"fmt"
	"math"

	"densestream/internal/graph"
)

// DirectedNaive is the side-selection variant that §4.3 describes and
// rejects: every pass computes BOTH candidate sets A(S) and B(T), then
// chooses which to remove by comparing the maximum in-degree E(S, j*)
// against the maximum out-degree E(i*, T) (remove A(S) iff
// E(S,j*)/E(i*,T) ≥ c). The paper's Algorithm 3 instead picks the side
// from |S|/|T| alone, which needs only one candidate computation per
// pass; this implementation exists for the ablation benchmark that
// quantifies the difference.
func DirectedNaive(g *graph.Directed, c, eps float64) (*DirectedResult, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("core: c must be a finite value > 0, got %v", c)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}

	aliveS := make([]bool, n)
	aliveT := make([]bool, n)
	outdeg := make([]int32, n)
	indeg := make([]int32, n)
	for u := 0; u < n; u++ {
		aliveS[u] = true
		aliveT[u] = true
		outdeg[u] = int32(g.OutDegree(int32(u)))
		indeg[u] = int32(g.InDegree(int32(u)))
	}
	removedAtS := make([]int32, n)
	removedAtT := make([]int32, n)
	edges := g.NumEdges()
	sizeS, sizeT := n, n

	density := func() float64 {
		if sizeS == 0 || sizeT == 0 {
			return 0
		}
		return float64(edges) / math.Sqrt(float64(sizeS)*float64(sizeT))
	}

	bestPass := 0
	bestDensity := density()
	trace := []DirectedPassStat{{
		Pass: 0, SizeS: sizeS, SizeT: sizeT, Edges: edges,
		Density: bestDensity, PeeledSide: '-',
	}}

	pass := 0
	var batchS, batchT []int32
	for sizeS > 0 && sizeT > 0 {
		pass++
		// Compute both candidate sets — the extra work Algorithm 3 avoids.
		cutS := (1 + eps) * float64(edges) / float64(sizeS)
		cutT := (1 + eps) * float64(edges) / float64(sizeT)
		batchS = batchS[:0]
		batchT = batchT[:0]
		maxOut, maxIn := int32(0), int32(0)
		for u := 0; u < n; u++ {
			if aliveS[u] && float64(outdeg[u]) <= cutS {
				batchS = append(batchS, int32(u))
				if outdeg[u] > maxOut {
					maxOut = outdeg[u]
				}
			}
			if aliveT[u] && float64(indeg[u]) <= cutT {
				batchT = append(batchT, int32(u))
				if indeg[u] > maxIn {
					maxIn = indeg[u]
				}
			}
		}
		if len(batchS) == 0 && len(batchT) == 0 {
			return nil, fmt.Errorf("core: naive directed pass %d found no candidates", pass)
		}
		// Decide the side by the max-degree comparison; ties and empty
		// sides fall back to the non-empty one.
		removeS := len(batchS) > 0
		if len(batchS) > 0 && len(batchT) > 0 {
			removeS = float64(maxIn) >= c*float64(maxOut)
		}
		var stat DirectedPassStat
		if removeS {
			for _, u := range batchS {
				aliveS[u] = false
				removedAtS[u] = int32(pass)
				for _, v := range g.OutNeighbors(u) {
					if aliveT[v] {
						indeg[v]--
						edges--
					}
				}
			}
			sizeS -= len(batchS)
			stat = DirectedPassStat{RemovedS: len(batchS), PeeledSide: 'S'}
		} else {
			for _, v := range batchT {
				aliveT[v] = false
				removedAtT[v] = int32(pass)
				for _, u := range g.InNeighbors(v) {
					if aliveS[u] {
						outdeg[u]--
						edges--
					}
				}
			}
			sizeT -= len(batchT)
			stat = DirectedPassStat{RemovedT: len(batchT), PeeledSide: 'T'}
		}
		stat.Pass = pass
		stat.SizeS = sizeS
		stat.SizeT = sizeT
		stat.Edges = edges
		stat.Density = density()
		trace = append(trace, stat)
		if stat.Density > bestDensity {
			bestDensity = stat.Density
			bestPass = pass
		}
	}

	return &DirectedResult{
		S:       survivorsAfter(removedAtS, bestPass),
		T:       survivorsAfter(removedAtT, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}
