package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"densestream/internal/flow"
	"densestream/internal/gen"
	"densestream/internal/graph"
)

func TestAtLeastKReturnsLargeEnoughSet(t *testing.T) {
	g, _ := gen.ChungLu(1000, 4000, 2.2, 5)
	for _, k := range []int{1, 10, 100, 500} {
		r, err := AtLeastK(g, k, 0.5)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(r.Set) < k {
			t.Fatalf("k=%d: |set| = %d", k, len(r.Set))
		}
		d, err := g.SubgraphDensity(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-r.Density) > 1e-9 {
			t.Fatalf("k=%d: set density %v != reported %v", k, d, r.Density)
		}
	}
}

func TestAtLeastKValidation(t *testing.T) {
	g, _ := gen.Clique(5)
	if _, err := AtLeastK(g, 0, 0.5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := AtLeastK(g, 6, 0.5); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := AtLeastK(g, 2, -1); err == nil {
		t.Fatal("bad eps accepted")
	}
	empty, _ := graph.NewBuilder(0).Freeze()
	if _, err := AtLeastK(empty, 1, 0.5); err == nil {
		t.Fatal("empty graph accepted")
	}
	wb := graph.NewBuilder(2)
	_ = wb.AddWeightedEdge(0, 1, 1)
	wg, _ := wb.Freeze()
	if _, err := AtLeastK(wg, 1, 0.5); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestAtLeastKWholeGraph(t *testing.T) {
	g, _ := gen.Clique(6)
	r, err := AtLeastK(g, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Set) != 6 || math.Abs(r.Density-2.5) > 1e-12 {
		t.Fatalf("got |set|=%d density=%v", len(r.Set), r.Density)
	}
}

func TestAtLeastKStopsEarly(t *testing.T) {
	// Lemma 11: the loop stops once |S| < k, so large k means few passes.
	g, _ := gen.ChungLu(2000, 8000, 2.2, 6)
	small, err := AtLeastK(g, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AtLeastK(g, 1500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if large.Passes >= small.Passes {
		t.Fatalf("k=1500 took %d passes, k=1 took %d; early stop broken",
			large.Passes, small.Passes)
	}
}

// Property: Algorithm 2 achieves (3+3ε) versus the brute-force optimum
// restricted to size >= k, and (2+2ε) when the optimum is larger than k.
func TestAtLeastKApproxGuaranteeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12) // brute force territory
		m := int64(3 + rng.Intn(3*n))
		if maxM := int64(n) * int64(n-1) / 2; m > maxM {
			m = maxM
		}
		g, err := gen.Gnm(n, m, seed)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(n/2)
		eps := 0.1 + float64(rng.Intn(10))/10
		optSet, optD, err := flow.BruteForceDensestAtLeastK(g, k)
		if err != nil {
			return false
		}
		r, err := AtLeastK(g, k, eps)
		if err != nil {
			return false
		}
		if len(r.Set) < k {
			return false
		}
		if r.Density > optD+1e-9 {
			return false // cannot beat the restricted optimum
		}
		guarantee := optD / (3 + 3*eps)
		if len(optSet) > k {
			guarantee = optD / (2 + 2*eps)
		}
		return r.Density >= guarantee-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAtLeastKPlantedLargeSubgraph(t *testing.T) {
	// Plant a moderately dense subgraph of 40 nodes; with k=40 the
	// algorithm must return something at least that good / (3+3eps).
	g, planted, err := gen.PlantedDense(500, 1000, 2.2, 40, 0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AtLeastK(g, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plantedD, _ := g.SubgraphDensity(planted)
	if r.Density < plantedD/(3+1.5)-1e-9 {
		t.Fatalf("density %v below (3+3ε) of planted %v", r.Density, plantedD)
	}
	if len(r.Set) < 40 {
		t.Fatalf("|set| = %d < k", len(r.Set))
	}
}
