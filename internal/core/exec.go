package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
)

// ErrStopped is the cause recorded in a PartialError when a progress
// hook returned false: the caller asked the solve to stop.
var ErrStopped = errors.New("solve stopped by progress hook")

// PartialError is returned when a solve is interrupted before peeling
// finished — the context was canceled, its deadline passed, or a
// progress hook returned false. It wraps the cause (errors.Is sees
// context.Canceled, context.DeadlineExceeded, or ErrStopped) and
// carries the per-pass trace accumulated up to the interruption, so an
// aborted long-running solve still reports how far it got.
type PartialError struct {
	Passes        int                // passes fully completed before the stop
	Trace         []PassStat         // partial trace (undirected shapes and MR rounds)
	DirectedTrace []DirectedPassStat // partial trace (directed shapes)
	Err           error              // the cause: context or ErrStopped
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("solve interrupted after %d passes: %v", e.Passes, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *PartialError) Unwrap() error { return e.Err }

// AsPassStat projects a directed pass onto the undirected stat shape
// (Nodes = |S|+|T|, Removed = removed from either side), which is what
// progress hooks receive for every execution model.
func (s DirectedPassStat) AsPassStat() PassStat {
	return PassStat{
		Pass:    s.Pass,
		Nodes:   s.SizeS + s.SizeT,
		Edges:   s.Edges,
		Density: s.Density,
		Removed: s.RemovedS + s.RemovedT,
	}
}

// Context returns the configured context, defaulting to Background.
func (o Opts) Context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Begin reports whether the run may start at all: a context that is
// already done fails before the first pass, with an empty trace.
func (o Opts) Begin() error {
	if o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return &PartialError{Err: err}
	}
	return nil
}

// Checkpoint is called by every peeling loop at the start of a pass,
// with the preceding pass's trace entry (the first call sees the
// initial state): it reports context cancellation first, then consults
// the progress hook (a false return stops the run). A run that
// completes its final pass is never turned into an error. The returned
// error, if any, is the bare cause — callers wrap it in a PartialError
// with their trace.
func (o Opts) Checkpoint(stat PassStat) error {
	// The peeling loops between checkpoints are allocation-free compute,
	// so on a single-P runtime they would otherwise never hand the
	// processor to the goroutine that cancels o.Ctx (or the server
	// handling the cancel request). One explicit yield per pass keeps
	// cancellation live at negligible cost.
	runtime.Gosched()
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return err
		}
	}
	if o.Progress != nil && !o.Progress(stat) {
		return ErrStopped
	}
	return nil
}
