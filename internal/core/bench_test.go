package core

import (
	"fmt"
	"sync"
	"testing"

	"densestream/internal/gen"
	"densestream/internal/graph"
)

// Microbenchmarks of the peel hot path (the `make bench-core` suite):
// pass throughput on the 2M-edge RMAT sweep the layout work targets,
// and the push vs pull decrement directions in isolation.

// rmatUndirected symmetrizes a directed RMAT graph: highly skewed
// degrees, the adversarial layout case for the peel loops.
func rmatUndirected(scale int, m int64, seed int64) (*graph.Undirected, error) {
	dg, err := gen.RMAT(scale, m, gen.DefaultRMAT, seed)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(dg.NumNodes())
	var ferr error
	dg.Edges(func(u, v int32) bool {
		ferr = b.AddEdge(u, v)
		return ferr == nil
	})
	if ferr != nil {
		return nil, ferr
	}
	return b.Freeze()
}

// coreBenchGraph lazily builds the ~2M-edge RMAT graph shared by the
// core benchmarks, so runs that skip them pay nothing.
var coreBenchGraph = sync.OnceValues(func() (*graph.Undirected, error) {
	return rmatUndirected(18, 2<<20, 7)
})

// BenchmarkCorePassThroughput measures whole-run peel throughput on the
// 2M-edge RMAT graph across ε: ε=0.05 maximizes passes (tiny batches —
// the frontier and compaction case), ε=1 is the paper's default (huge
// batches — the pull case). Bytes/op counts 8 bytes per edge per pass,
// so MB/s is true pass throughput.
func BenchmarkCorePassThroughput(b *testing.B) {
	g, err := coreBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{0.05, 1} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			var passes int
			for i := 0; i < b.N; i++ {
				r, err := Undirected(g, eps)
				if err != nil {
					b.Fatal(err)
				}
				passes = r.Passes
			}
			b.SetBytes(int64(passes) * g.NumEdges() * 8)
			b.ReportMetric(float64(passes), "passes")
		})
	}
}

// BenchmarkCorePushPull pins each decrement direction of one full run:
// ε=0 forces minimum-size batches (every decrement pass takes the push
// direction), a large ε forces one near-total batch (the pull
// direction). The adaptive engine picks per pass; these bounds bracket
// it.
func BenchmarkCorePushPull(b *testing.B) {
	g, err := coreBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		eps  float64
	}{{"push-heavy/eps=0", 0}, {"pull-heavy/eps=4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			for i := 0; i < b.N; i++ {
				if _, err := Undirected(g, bc.eps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorePassThroughputWeighted is the weighted pull path (the
// ROADMAP's cache-blocked ordering item) on the same graph with unit
// weights.
func BenchmarkCorePassThroughputWeighted(b *testing.B) {
	g, err := coreBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(g.NumEdges() * 8)
	for i := 0; i < b.N; i++ {
		if _, err := UndirectedWeighted(g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreCompact isolates the CSR rebuild the peel engines pay at
// each compaction epoch, comparing the order-preserving relabel against
// the hub-first (degree-ordered) relabel that also builds the RowBanks
// pull layout. The keep set is the deg ≥ 4 survivors of the RMAT
// graph — the hub-heavy shape a mid-peel compaction actually sees.
// Bytes/op counts the two adjacency sweeps each rebuild performs.
func BenchmarkCoreCompact(b *testing.B) {
	g, err := coreBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	var keep []int32
	var degSum int64
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		if d := len(g.Neighbors(u)); d >= 4 {
			keep = append(keep, u)
			degSum += int64(d)
		}
	}
	// Each sub-benchmark warms its scratch with one untimed rebuild so a
	// -benchtime=1x run measures the steady-state compaction the peel
	// loop actually repeats, not the first-epoch scratch growth (whose
	// heap expansion can drag a GC cycle into the single timed pass).
	b.Run("id-ordered", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(degSum * 4 * 2)
		var s graph.CompactScratch
		g.CompactInto(keep, &s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub := g.CompactInto(keep, &s)
			if sub.NumNodes() != len(keep) {
				b.Fatalf("compacted to %d nodes, want %d", sub.NumNodes(), len(keep))
			}
		}
	})
	b.Run("degree-ordered", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(degSum * 4 * 2)
		var s graph.CompactScratch
		g.CompactIntoDegreeOrdered(keep, &s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub, order := g.CompactIntoDegreeOrdered(keep, &s)
			if sub.NumNodes() != len(keep) || len(order) != len(keep) {
				b.Fatalf("compacted to %d nodes (order %d), want %d", sub.NumNodes(), len(order), len(keep))
			}
		}
	})
}
