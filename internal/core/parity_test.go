package core

import (
	"fmt"
	"reflect"
	"testing"

	"densestream/internal/gen"
	"densestream/internal/graph"
)

// The layout parity sweep: the cache-blocked engines (live-vertex
// frontier, adaptive push/pull, CSR compaction) must be
// reflect.DeepEqual to the preserved pre-layout reference
// implementations — set, density, passes, and full trace — across
// Chung-Lu and RMAT graphs, all four objectives, workers 1–8, and ε
// values forcing both tiny (push) and huge (pull) removal batches. The
// hooks additionally prove that each decrement direction and the
// compactor actually ran somewhere in the sweep, so the equality is
// over the interesting paths, not around them.

// parityEps spans tiny batches (0: minimum removals, many passes),
// moderate, and huge batches (3: near-total removals).
var parityEps = []float64{0, 0.3, 3}

type parityCounters struct {
	push, pull, compactions int
	relabels, bankedPulls   int
}

func (pc *parityCounters) opts(workers int) Opts {
	return Opts{
		Workers: workers,
		hooks: peelHooks{
			mode: func(_ int, pull bool) {
				if pull {
					pc.pull++
				} else {
					pc.push++
				}
			},
			compacted: func(_, _ int) { pc.compactions++ },
			relabeled: func(_ int) { pc.relabels++ },
			banked:    func(_, _ int) { pc.bankedPulls++ },
		},
	}
}

// parityGraphs returns the undirected sweep inputs: a Chung-Lu
// power-law graph and a symmetrized RMAT graph, both comfortably above
// the compaction floor.
func parityGraphs(t *testing.T) map[string]*graph.Undirected {
	t.Helper()
	cl, err := gen.ChungLu(3000, 15000, 2.2, 41)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := rmatUndirectedT(11, 12000, 43)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Undirected{"chunglu": cl, "rmat": rm}
}

func rmatUndirectedT(scale int, m int64, seed int64) (*graph.Undirected, error) {
	return rmatUndirected(scale, m, seed)
}

func TestLayoutParityUndirected(t *testing.T) {
	var pc parityCounters
	for name, g := range parityGraphs(t) {
		for _, eps := range parityEps {
			want, err := referenceUndirected(g, eps, Opts{Workers: 1})
			if err != nil {
				t.Fatalf("%s eps=%g: reference: %v", name, eps, err)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := UndirectedOpts(g, eps, pc.opts(workers))
				if err != nil {
					t.Fatalf("%s eps=%g workers=%d: %v", name, eps, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s eps=%g workers=%d: layout engine diverged from reference\ngot  %+v\nwant %+v",
						name, eps, workers, summarize(got), summarize(want))
				}
			}
		}
	}
	if pc.push == 0 || pc.pull == 0 {
		t.Fatalf("sweep exercised push=%d pull=%d passes; need both directions", pc.push, pc.pull)
	}
	if pc.compactions == 0 {
		t.Fatal("sweep never compacted a CSR")
	}
	if pc.relabels != pc.compactions {
		t.Fatalf("sweep compacted %d times but relabeled %d times; the unweighted compactor must always reorder", pc.compactions, pc.relabels)
	}
}

func TestLayoutParityWeighted(t *testing.T) {
	var pc parityCounters
	for name, base := range parityGraphs(t) {
		// Deterministic non-unit weights over the same topology.
		b := graph.NewBuilder(base.NumNodes())
		werr := error(nil)
		base.Edges(func(u, v int32, _ float64) bool {
			werr = b.AddWeightedEdge(u, v, 0.5+float64((u+3*v)%7))
			return werr == nil
		})
		if werr != nil {
			t.Fatal(werr)
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range parityEps {
			want, err := referenceUndirectedWeighted(g, eps, Opts{Workers: 1})
			if err != nil {
				t.Fatalf("%s eps=%g: reference: %v", name, eps, err)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := UndirectedWeightedOpts(g, eps, pc.opts(workers))
				if err != nil {
					t.Fatalf("%s eps=%g workers=%d: %v", name, eps, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s eps=%g workers=%d: weighted layout engine diverged\ngot  %+v\nwant %+v",
						name, eps, workers, summarize(got), summarize(want))
				}
			}
		}
		// The unweighted graph must also agree through the unit-weight path.
		want, err := referenceUndirectedWeighted(base, 0.5, Opts{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := UndirectedWeightedOpts(base, 0.5, pc.opts(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: unit-weight parity failed", name)
		}
	}

	// Weighted compaction needs survivors with decayed rows (see
	// maybeCompactWeighted); the power-law sweeps above leave dense
	// cores whose rows stay live, so drive the hub-and-leaves shape
	// that does trigger it.
	g := starHeavyWeighted(t)
	want, err := referenceUndirectedWeighted(g, 0.1, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 8; workers++ {
		got, err := UndirectedWeightedOpts(g, 0.1, pc.opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("slow-peel workers=%d: weighted layout engine diverged\ngot  %+v\nwant %+v",
				workers, summarize(got), summarize(want))
		}
	}
	if pc.compactions == 0 {
		t.Fatal("weighted sweep never compacted a CSR")
	}
	if pc.relabels != 0 {
		t.Fatalf("weighted sweep relabeled %d times; the weighted compactor must stay id-ordered", pc.relabels)
	}
}

// starHeavyWeighted builds the hub-and-leaves shape whose first pass
// strands hubs with mostly-dead rows: 64 hubs in a dense weighted core
// (a 16-regular circulant with varied weights) each carrying 48
// unit-weight leaves. The leaves die in pass one, the surviving core
// is under a quarter of the graph, and its rows are over half dead —
// exactly the weighted compaction trigger.
func starHeavyWeighted(t *testing.T) *graph.Undirected {
	t.Helper()
	const hubs, leaves = 64, 48
	n := hubs * (1 + leaves)
	b := graph.NewBuilder(n)
	add := func(u, v int32, w float64) {
		if err := b.AddWeightedEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < hubs; h++ {
		for s := 1; s <= 8; s++ {
			add(int32(h), int32((h+s)%hubs), 2+float64((h+s)%5))
		}
		for l := 0; l < leaves; l++ {
			add(int32(h), int32(hubs+h*leaves+l), 1)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLayoutParityAtLeastK(t *testing.T) {
	var pc parityCounters
	for name, g := range parityGraphs(t) {
		// ε=0 means a one-node quota per pass — thousands of O(n)
		// reference passes — so the tiny-batch end uses a small
		// positive ε instead; AtLeastK batches are quota-capped and
		// exercise the push direction at every ε.
		for _, eps := range []float64{0.1, 0.5, 3} {
			for _, k := range []int{2, g.NumNodes() / 4} {
				want, err := referenceAtLeastK(g, k, eps, Opts{Workers: 1})
				if err != nil {
					t.Fatalf("%s k=%d eps=%g: reference: %v", name, k, eps, err)
				}
				for workers := 1; workers <= 8; workers++ {
					got, err := AtLeastKOpts(g, k, eps, pc.opts(workers))
					if err != nil {
						t.Fatalf("%s k=%d eps=%g workers=%d: %v", name, k, eps, workers, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s k=%d eps=%g workers=%d: AtLeastK layout engine diverged",
							name, k, eps, workers)
					}
				}
			}
		}
	}
	if pc.push == 0 {
		t.Fatal("AtLeastK sweep never pushed")
	}
	if pc.compactions == 0 {
		t.Fatal("AtLeastK sweep never compacted a CSR")
	}
	if pc.relabels != pc.compactions {
		t.Fatalf("AtLeastK compacted %d times but relabeled %d times", pc.compactions, pc.relabels)
	}
}

func TestLayoutParityDirected(t *testing.T) {
	var pc parityCounters
	cl, err := gen.ChungLuDirected(3000, 15000, 2.2, 47)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := gen.RMAT(11, 12000, gen.DefaultRMAT, 53)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Directed{"chunglu": cl, "rmat": rm} {
		for _, eps := range parityEps {
			for _, c := range []float64{0.5, 1, 2} {
				want, err := referenceDirected(g, c, eps, Opts{Workers: 1})
				if err != nil {
					t.Fatalf("%s c=%g eps=%g: reference: %v", name, c, eps, err)
				}
				for workers := 1; workers <= 8; workers++ {
					got, err := DirectedOpts(g, c, eps, pc.opts(workers))
					if err != nil {
						t.Fatalf("%s c=%g eps=%g workers=%d: %v", name, c, eps, workers, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s c=%g eps=%g workers=%d: directed layout engine diverged",
							name, c, eps, workers)
					}
				}
			}
		}
	}
	if pc.push == 0 || pc.pull == 0 {
		t.Fatalf("directed sweep exercised push=%d pull=%d; need both", pc.push, pc.pull)
	}
	if pc.compactions == 0 {
		t.Fatal("directed sweep never compacted a CSR")
	}
	if pc.relabels != pc.compactions {
		t.Fatalf("directed sweep compacted %d times but relabeled %d times", pc.compactions, pc.relabels)
	}
}

// TestLayoutParityBankedPull drives the shape that exercises the
// fixed-stride row banks: a graph whose post-compaction survivors keep
// peeling slowly, so later passes pull over a banked CSR outside the
// fused rebuild. The banked gather must match the reference engine
// bit-for-bit at every worker count, and the sweep must prove the
// banks actually engaged.
func TestLayoutParityBankedPull(t *testing.T) {
	// A circulant core with long reach peels gradually at eps=0: a few
	// nodes per pass for hundreds of passes, with many pull passes
	// after the first compaction.
	const n = 4096
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for s := 1; s <= 4+(u%13); s++ {
			if err := b.AddEdge(int32(u), int32((u+s)%n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	var pc parityCounters
	want, err := referenceUndirected(g, 0, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 8; workers++ {
		got, err := UndirectedOpts(g, 0, pc.opts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: banked engine diverged from reference\ngot  %+v\nwant %+v",
				workers, summarize(got), summarize(want))
		}
	}
	if pc.compactions == 0 || pc.bankedPulls == 0 {
		t.Fatalf("banked sweep: compactions=%d bankedPulls=%d; need both > 0", pc.compactions, pc.bankedPulls)
	}
}

func summarize(r *Result) string {
	return fmt.Sprintf("{|Set|=%d Density=%v Passes=%d |Trace|=%d}", len(r.Set), r.Density, r.Passes, len(r.Trace))
}
