package core

import (
	"testing"

	"densestream/internal/gen"
)

// The Lemma 7 reduction: a constant-factor approximation must be able to
// distinguish YES instances (one q-clique among stars) from NO instances
// (all stars), because ρ = (q-1)/2 vs ρ = 1 - 1/q. This exercises the
// gadget end-to-end through Algorithm 1.
func TestDisjointnessSeparation(t *testing.T) {
	const nGadgets, q = 40, 8
	yes, err := gen.DisjointnessInstance(nGadgets, q, 17)
	if err != nil {
		t.Fatal(err)
	}
	no, err := gen.DisjointnessInstance(nGadgets, q, -1)
	if err != nil {
		t.Fatal(err)
	}
	// α = 2+2ε must be below the gap (q-1)/2 / (1-1/q) = q/2 for the
	// distinction to be forced; ε=0.5 gives α=3 < 4.
	yesR, err := Undirected(yes, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	noR, err := Undirected(no, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gapThreshold := float64(q-1) / 2 / 3 // clique density / α
	if yesR.Density < gapThreshold {
		t.Fatalf("YES instance density %v below %v: approximation cannot separate", yesR.Density, gapThreshold)
	}
	if noR.Density >= gapThreshold {
		t.Fatalf("NO instance density %v at or above %v", noR.Density, gapThreshold)
	}
	// The YES witness should be exactly the planted clique.
	if len(yesR.Set) != q {
		t.Fatalf("YES witness size %d, want the %d-clique", len(yesR.Set), q)
	}
	base := int32(17 * q)
	for _, u := range yesR.Set {
		if u < base || u >= base+q {
			t.Fatalf("witness node %d outside the planted clique [%d,%d)", u, base, base+q)
		}
	}
}
