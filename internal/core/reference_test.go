package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"densestream/internal/graph"
	"densestream/internal/par"
)

// This file preserves, verbatim, the pre-layout-work peeling engines —
// full-range candidate scans, atomic push decrements, chunked pull for
// the weighted path, no frontier and no compaction. They are the
// oracle of the parity sweep in parity_test.go: the cache-blocked
// engines must reproduce their Results bit for bit (set, density,
// passes, trace) on every graph, objective, ε, and worker count.

func referenceUndirected(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	pool := o.pool()

	alive := make([]bool, n)
	deg := make([]int32, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive[u] = true
			deg[u] = int32(g.Degree(int32(u)))
		}
	})
	removedAt := make([]int, n)
	edges := g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	col := par.NewCollector(n)
	var batch []int32
	for nodes > 0 {
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		col.Reset()
		pool.ForChunks(n, func(c, lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] && float64(deg[u]) <= cut {
					col.Append(c, int32(u))
				}
			}
		})
		batch = col.Merge(batch[:0])
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		pool.ForChunks(len(batch), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := batch[i]
				alive[u] = false
				removedAt[u] = pass
			}
		})
		edges -= pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
			var sub int64
			for i := lo; i < hi; i++ {
				u := batch[i]
				for _, v := range g.Neighbors(u) {
					if alive[v] {
						atomic.AddInt32(&deg[v], -1)
						sub++
					} else if removedAt[v] == pass && u < v {
						sub++
					}
				}
			}
			return sub
		})
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     refSurvivors(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func referenceUndirectedWeighted(g *graph.Undirected, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	pool := o.pool()

	alive := make([]bool, n)
	wdeg := make([]float64, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive[u] = true
			wdeg[u] = g.WeightedDegree(int32(u))
		}
	})
	removedAt := make([]int, n)
	weight := g.TotalWeight()
	var edges int64 = g.NumEdges()
	nodes := n

	bestPass := 0
	bestDensity := g.Density()
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: bestDensity}}

	threshold := 2 * (1 + eps)
	pass := 0
	col := par.NewCollector(n)
	var batch []int32
	wslots := make([]float64, par.NumChunks(n))
	eslots := make([]int64, par.NumChunks(n))
	for nodes > 0 {
		pass++
		rho := weight / float64(nodes)
		cut := threshold * rho
		col.Reset()
		pool.ForChunks(n, func(c, lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] && wdeg[u] <= cut+1e-12 {
					col.Append(c, int32(u))
				}
			}
		})
		batch = col.Merge(batch[:0])
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: weighted pass %d removed no nodes (ρ=%v)", pass, rho)
		}
		pool.ForChunks(len(batch), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := batch[i]
				alive[u] = false
				removedAt[u] = pass
			}
		})
		pool.ForChunks(n, func(c, lo, hi int) {
			var wsub float64
			var esub int64
			for v := lo; v < hi; v++ {
				switch {
				case alive[v]:
					ws := g.NeighborWeights(int32(v))
					for i, u := range g.Neighbors(int32(v)) {
						if removedAt[u] == pass {
							w := 1.0
							if ws != nil {
								w = ws[i]
							}
							wdeg[v] -= w
							wsub += w
							esub++
						}
					}
				case removedAt[v] == pass:
					ws := g.NeighborWeights(int32(v))
					for i, u := range g.Neighbors(int32(v)) {
						if removedAt[u] == pass && u < int32(v) {
							w := 1.0
							if ws != nil {
								w = ws[i]
							}
							wsub += w
							esub++
						}
					}
				}
			}
			wslots[c] = wsub
			eslots[c] = esub
		})
		for c := range wslots {
			weight -= wslots[c]
			edges -= eslots[c]
		}
		nodes -= len(batch)
		if weight < 0 && weight > -1e-9 {
			weight = 0
		}
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = weight / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes > 0 && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}

	return &Result{
		Set:     refSurvivors(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func referenceAtLeastK(g *graph.Undirected, k int, eps float64, o Opts) (*Result, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k=%d out of range [1,%d]", k, n)
	}
	pool := o.pool()

	alive := make([]bool, n)
	deg := make([]int32, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			alive[u] = true
			deg[u] = int32(g.Degree(int32(u)))
		}
	})
	removedAt := make([]int, n)
	edges := g.NumEdges()
	nodes := n

	bestPass := -1
	bestDensity := -1.0
	if nodes >= k {
		bestPass = 0
		bestDensity = g.Density()
	}
	trace := []PassStat{{Pass: 0, Nodes: nodes, Edges: edges, Density: g.Density()}}

	threshold := 2 * (1 + eps)
	frac := eps / (1 + eps)
	pass := 0
	col := par.NewCollector(n)
	var candidates []int32
	for nodes >= k {
		pass++
		rho := float64(edges) / float64(nodes)
		cut := threshold * rho
		col.Reset()
		pool.ForChunks(n, func(c, lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] && float64(deg[u]) <= cut {
					col.Append(c, int32(u))
				}
			}
		})
		candidates = col.Merge(candidates[:0])
		if len(candidates) == 0 {
			return nil, fmt.Errorf("core: pass %d found no candidates (ρ=%v)", pass, rho)
		}
		quota := int(frac * float64(nodes))
		if quota < 1 {
			quota = 1
		}
		if quota > len(candidates) {
			quota = len(candidates)
		}
		sort.Slice(candidates, func(i, j int) bool {
			if deg[candidates[i]] != deg[candidates[j]] {
				return deg[candidates[i]] < deg[candidates[j]]
			}
			return candidates[i] < candidates[j]
		})
		batch := candidates[:quota]
		pool.ForChunks(len(batch), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				u := batch[i]
				alive[u] = false
				removedAt[u] = pass
			}
		})
		edges -= pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
			var sub int64
			for i := lo; i < hi; i++ {
				u := batch[i]
				for _, v := range g.Neighbors(u) {
					if alive[v] {
						atomic.AddInt32(&deg[v], -1)
						sub++
					} else if removedAt[v] == pass && u < v {
						sub++
					}
				}
			}
			return sub
		})
		nodes -= len(batch)
		var rhoAfter float64
		if nodes > 0 {
			rhoAfter = float64(edges) / float64(nodes)
		}
		trace = append(trace, PassStat{Pass: pass, Nodes: nodes, Edges: edges, Density: rhoAfter, Removed: len(batch)})
		if nodes >= k && rhoAfter > bestDensity {
			bestDensity = rhoAfter
			bestPass = pass
		}
	}
	if bestPass < 0 {
		return nil, fmt.Errorf("core: no intermediate subgraph of size >= %d", k)
	}

	return &Result{
		Set:     refSurvivors(removedAt, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func referenceDirected(g *graph.Directed, c, eps float64, o Opts) (*DirectedResult, error) {
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, graph.ErrEmptyGraph
	}
	pool := o.pool()

	aliveS := make([]bool, n)
	aliveT := make([]bool, n)
	outdeg := make([]int32, n)
	indeg := make([]int32, n)
	pool.ForChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			aliveS[u] = true
			aliveT[u] = true
			outdeg[u] = int32(g.OutDegree(int32(u)))
			indeg[u] = int32(g.InDegree(int32(u)))
		}
	})
	removedAtS := make([]int, n)
	removedAtT := make([]int, n)
	edges := g.NumEdges()
	sizeS, sizeT := n, n

	density := func() float64 {
		if sizeS == 0 || sizeT == 0 {
			return 0
		}
		return float64(edges) / math.Sqrt(float64(sizeS)*float64(sizeT))
	}

	bestPass := 0
	bestDensity := density()
	trace := []DirectedPassStat{{
		Pass: 0, SizeS: sizeS, SizeT: sizeT, Edges: edges,
		Density: bestDensity, PeeledSide: '-',
	}}

	pass := 0
	col := par.NewCollector(n)
	var batch []int32
	for sizeS > 0 && sizeT > 0 {
		pass++
		var stat DirectedPassStat
		if float64(sizeS) >= c*float64(sizeT) {
			cut := (1 + eps) * float64(edges) / float64(sizeS)
			col.Reset()
			pool.ForChunks(n, func(ch, lo, hi int) {
				for u := lo; u < hi; u++ {
					if aliveS[u] && float64(outdeg[u]) <= cut {
						col.Append(ch, int32(u))
					}
				}
			})
			batch = col.Merge(batch[:0])
			if len(batch) == 0 {
				return nil, fmt.Errorf("core: directed pass %d removed no S nodes", pass)
			}
			pool.ForChunks(len(batch), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					u := batch[i]
					aliveS[u] = false
					removedAtS[u] = pass
				}
			})
			edges -= pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
				var sub int64
				for i := lo; i < hi; i++ {
					for _, v := range g.OutNeighbors(batch[i]) {
						if aliveT[v] {
							atomic.AddInt32(&indeg[v], -1)
							sub++
						}
					}
				}
				return sub
			})
			sizeS -= len(batch)
			stat = DirectedPassStat{RemovedS: len(batch), PeeledSide: 'S'}
		} else {
			cut := (1 + eps) * float64(edges) / float64(sizeT)
			col.Reset()
			pool.ForChunks(n, func(ch, lo, hi int) {
				for u := lo; u < hi; u++ {
					if aliveT[u] && float64(indeg[u]) <= cut {
						col.Append(ch, int32(u))
					}
				}
			})
			batch = col.Merge(batch[:0])
			if len(batch) == 0 {
				return nil, fmt.Errorf("core: directed pass %d removed no T nodes", pass)
			}
			pool.ForChunks(len(batch), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := batch[i]
					aliveT[v] = false
					removedAtT[v] = pass
				}
			})
			edges -= pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
				var sub int64
				for i := lo; i < hi; i++ {
					for _, u := range g.InNeighbors(batch[i]) {
						if aliveS[u] {
							atomic.AddInt32(&outdeg[u], -1)
							sub++
						}
					}
				}
				return sub
			})
			sizeT -= len(batch)
			stat = DirectedPassStat{RemovedT: len(batch), PeeledSide: 'T'}
		}
		stat.Pass = pass
		stat.SizeS = sizeS
		stat.SizeT = sizeT
		stat.Edges = edges
		stat.Density = density()
		trace = append(trace, stat)
		if stat.Density > bestDensity {
			bestDensity = stat.Density
			bestPass = pass
		}
	}

	return &DirectedResult{
		S:       refSurvivors(removedAtS, bestPass),
		T:       refSurvivors(removedAtT, bestPass),
		Density: bestDensity,
		Passes:  pass,
		Trace:   trace,
	}, nil
}

func refSurvivors(removedAt []int, bestPass int) []int32 {
	var out []int32
	for u, p := range removedAt {
		if p == 0 || p > bestPass {
			out = append(out, int32(u))
		}
	}
	return out
}
