package core

import (
	"math"
	"testing"
	"testing/quick"

	"densestream/internal/flow"
	"densestream/internal/gen"
	"densestream/internal/graph"
)

func TestDirectedNaiveValidation(t *testing.T) {
	g := graph.MustFromDirectedEdges(2, [][2]int32{{0, 1}})
	if _, err := DirectedNaive(g, 0, 0.5); err == nil {
		t.Fatal("c=0 accepted")
	}
	if _, err := DirectedNaive(g, 1, -1); err == nil {
		t.Fatal("bad eps accepted")
	}
	empty, _ := graph.NewDirectedBuilder(0).Freeze()
	if _, err := DirectedNaive(empty, 1, 0.5); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestDirectedNaiveTerminatesAndIsSane(t *testing.T) {
	g, err := gen.ChungLuDirected(1000, 5000, 2.2, 19)
	if err != nil {
		t.Fatal(err)
	}
	r, err := DirectedNaive(g, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density <= 0 {
		t.Fatalf("density = %v", r.Density)
	}
	d, err := g.SubgraphDensity(r.S, r.T)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-r.Density) > 1e-9 {
		t.Fatalf("set density %v != reported %v", d, r.Density)
	}
}

// Property: the naive variant also meets the (2+2ε) bound at the optimal
// c on tiny graphs (the edge-assignment argument of Lemma 12 applies to
// any rule that removes only below-threshold candidates).
func TestDirectedNaiveApproxProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := gen.GnmDirected(7, 16, seed)
		if err != nil {
			return false
		}
		if g.NumEdges() == 0 {
			return true
		}
		sOpt, tOpt, optD, err := flow.BruteForceDirectedDensest(g)
		if err != nil {
			return false
		}
		c := float64(len(sOpt)) / float64(len(tOpt))
		r, err := DirectedNaive(g, c, 0.5)
		if err != nil {
			return false
		}
		return r.Density >= optD/(2+1)-1e-9 && r.Density <= optD+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
