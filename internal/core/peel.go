package core

import (
	"sort"

	"densestream/internal/graph"
	"densestream/internal/par"
)

// This file is the shared layout machinery of the peel hot path. The
// paper's promise is that one pass is a cheap linear scan, so the
// in-memory engines are built to run at memory bandwidth:
//
//   - a live-vertex frontier: the candidate scan walks a compacted,
//     ascending slice of the surviving vertex ids, so a pass costs
//     O(live), not O(n), once the graph has started to shrink;
//   - adaptive push/pull decrements: a small removed batch pushes
//     decrements along its own adjacency (owned-lane routed, no
//     atomics); a batch whose adjacency outweighs the survivors'
//     flips to a pull pass that recounts every survivor's live
//     degree directly from the CSR — the direction-optimizing trade
//     of Beamer-style BFS, decided by graph shape alone so every
//     worker count takes the same path;
//   - periodic CSR compaction: once the live fraction drops below
//     1/compactLiveDivisor, the surviving subgraph is rebuilt into a
//     dense CSR (graph.CompactInto, scratch reused) with an
//     order-preserving relabel, so later passes scan cache-resident
//     adjacency instead of rows full of dead neighbors.
//
// Every decision above is a function of the graph shape only — never
// of the worker count — which preserves the engines' bit-identical
// determinism contract (see internal/par).
const (
	// compactMinNodes: CSRs smaller than this are never compacted —
	// they are already cache resident and the rebuild bookkeeping
	// would dominate.
	compactMinNodes = 1 << 10
	// compactLiveDivisor: a compaction is "due" — and tilts the
	// decrement direction toward pull — once the live set is at most
	// 1/compactLiveDivisor of the current CSR's node count. Rebuilds
	// are not limited to due passes: any cost-chosen pull pass also
	// fuses a rebuild, but there the scan over the surviving rows was
	// happening regardless (pushVol > liveRowVol), so the rebuild adds
	// only the writes of a strictly smaller CSR. Either way total
	// rebuild work stays O(n + m) over a run.
	compactLiveDivisor = 4
)

// peelHooks are package-internal observation points for the layout
// tests: the parity sweep uses them to assert that both decrement
// modes and the compactor actually ran. Nil hooks are never called.
type peelHooks struct {
	mode      func(pass int, pull bool)
	compacted func(liveN, prevN int)
}

// peelState is the mutable state of an undirected peel run. Vertex ids
// live in two spaces: the "current" space of the (possibly compacted)
// CSR, in which all per-pass state is indexed, and the original space
// of the input graph, in which removal passes are recorded for the
// final Set. Compaction relabels order-preservingly, so ascending
// current order is always ascending original order.
type peelState struct {
	pool  *par.Pool
	g     *graph.Undirected // current CSR (input graph or a compaction of it)
	n     int               // current CSR node count
	origN int

	origOf      []int32   // current id -> original id; nil = identity
	live        []int32   // ascending current ids of the surviving vertices
	liveRowVol  int64     // Σ CSR row length over live (the pull cost)
	removedPass []int32   // current space; 0 = alive, else the removal pass
	removedAt   []int32   // original space; 0 = never removed
	deg         []int32   // live degrees (unweighted peelers)
	wdeg        []float64 // live weighted degrees (weighted peeler)

	col    *par.Collector
	batch  []int32
	router *par.Router
	cs     [2]graph.CompactScratch
	csTurn int
}

func newPeelState(g *graph.Undirected, pool *par.Pool, weighted bool) *peelState {
	n := g.NumNodes()
	st := &peelState{
		pool: pool, g: g, n: n, origN: n,
		live:        make([]int32, n),
		liveRowVol:  2 * g.NumEdges(),
		removedPass: make([]int32, n),
		removedAt:   make([]int32, n),
		col:         par.NewCollector(n),
	}
	if weighted {
		st.wdeg = make([]float64, n)
		pool.ForChunks(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				st.live[u] = int32(u)
				st.wdeg[u] = g.WeightedDegree(int32(u))
			}
		})
	} else {
		st.deg = make([]int32, n)
		pool.ForChunks(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				st.live[u] = int32(u)
				st.deg[u] = int32(g.Degree(int32(u)))
			}
		})
	}
	return st
}

// orig maps a current vertex id back to its original id.
func (st *peelState) orig(u int32) int32 {
	if st.origOf == nil {
		return u
	}
	return st.origOf[u]
}

// scanCandidates collects the live vertices with degree at most cut
// into st.batch. The frontier is chunked by index and per-chunk
// buffers merge in chunk order, so the batch is ascending and
// identical for every worker count.
func (st *peelState) scanCandidates(o Opts, cut float64) error {
	st.col.Reset()
	deg, live := st.deg, st.live
	if err := st.pool.ForChunksCtx(o.Ctx, len(live), func(c, lo, hi int) {
		for _, u := range live[lo:hi] {
			if float64(deg[u]) <= cut {
				st.col.Append(c, u)
			}
		}
	}); err != nil {
		return err
	}
	st.batch = st.col.Merge(st.batch[:0])
	return nil
}

// scanCandidatesWeighted is scanCandidates over weighted degrees, with
// the historical 1e-12 slack on the cut.
func (st *peelState) scanCandidatesWeighted(o Opts, cut float64) error {
	st.col.Reset()
	wdeg, live := st.wdeg, st.live
	if err := st.pool.ForChunksCtx(o.Ctx, len(live), func(c, lo, hi int) {
		for _, u := range live[lo:hi] {
			if wdeg[u] <= cut+1e-12 {
				st.col.Append(c, u)
			}
		}
	}); err != nil {
		return err
	}
	st.batch = st.col.Merge(st.batch[:0])
	return nil
}

// markRemoved stamps the batch's removal pass in both id spaces and
// returns the batch's total CSR row volume — the cost of a push pass.
func (st *peelState) markRemoved(batch []int32, pass int) int64 {
	g := st.g
	return st.pool.SumInt64(len(batch), func(_, lo, hi int) int64 {
		var vol int64
		for _, u := range batch[lo:hi] {
			st.removedPass[u] = int32(pass)
			st.removedAt[st.orig(u)] = int32(pass)
			vol += int64(g.Degree(u))
		}
		return vol
	})
}

// filterLive drops this pass's removals from the frontier and deducts
// their row volume. The in-place ascending filter is sequential — it
// is a single O(live) sweep over memory the candidate scan just
// touched — and therefore trivially worker-invariant.
func (st *peelState) filterLive(pushVol int64) {
	live := st.live[:0]
	for _, u := range st.live {
		if st.removedPass[u] == 0 {
			live = append(live, u)
		}
	}
	st.live = live
	st.liveRowVol -= pushVol
}

// pushDecrement walks the removed batch's adjacency and decrements the
// degree of every live neighbor: sequentially for one worker, and
// through the owned-lane router otherwise, so no path uses atomics. It
// returns the number of edges removed this pass, counting an edge
// between two batch members once (charged to its smaller endpoint).
func (st *peelState) pushDecrement(batch []int32, pass int) int64 {
	g, deg, rp := st.g, st.deg, st.removedPass
	p32 := int32(pass)
	if st.pool.Workers() == 1 {
		var sub int64
		for _, u := range batch {
			for _, v := range g.Neighbors(u) {
				if r := rp[v]; r == 0 {
					deg[v]--
					sub++
				} else if r == p32 && u < v {
					sub++
				}
			}
		}
		return sub
	}
	if st.router == nil {
		st.router = par.NewRouter(st.origN)
	}
	st.router.Begin(par.NumChunks(len(batch)))
	sub := st.pool.SumInt64(len(batch), func(c, lo, hi int) int64 {
		var s int64
		for _, u := range batch[lo:hi] {
			for _, v := range g.Neighbors(u) {
				if r := rp[v]; r == 0 {
					st.router.Route(c, v)
					s++
				} else if r == p32 && u < v {
					s++
				}
			}
		}
		return s
	})
	st.router.Drain(st.pool, func(_ int, ids []int32) {
		for _, v := range ids {
			deg[v]--
		}
	})
	return sub
}

// pullRecount recomputes every survivor's degree directly from the CSR
// and returns the surviving edge count; call after filterLive. Chosen
// over push when the removed batch's adjacency outweighs the
// survivors' (huge removal batches), where rescanning the survivors is
// the cheaper direction.
func (st *peelState) pullRecount() int64 {
	g, deg, rp, live := st.g, st.deg, st.removedPass, st.live
	total := st.pool.SumInt64(len(live), func(_, lo, hi int) int64 {
		var s int64
		for _, v := range live[lo:hi] {
			cnt := int32(0)
			for _, nb := range g.Neighbors(v) {
				if rp[nb] == 0 {
					cnt++
				}
			}
			deg[v] = cnt
			s += int64(cnt)
		}
		return s
	})
	return total / 2
}

// decrement applies one pass's removals to the degree state through
// whichever direction is cheaper, compacts the CSR when the live set
// has shrunk past the threshold, and returns the new surviving edge
// count. When a pull pass and a compaction coincide — the huge-batch
// case — the two fuse: compacting IS the pull (a survivor's row length
// in the compacted CSR is exactly its live-neighbor count), so the
// surviving adjacency is scanned once instead of twice. All paths
// produce identical integer state; the choices are pure wall-clock
// trades fixed by the graph shape.
func (st *peelState) decrement(o Opts, batch []int32, pass int, edges, pushVol int64) int64 {
	canCompact := st.n >= compactMinNodes
	// The direction is the per-pass cost minimum — push touches the
	// batch's rows, pull the survivors' — except that a due compaction
	// (live set under 1/compactLiveDivisor of the CSR) tilts the choice
	// toward pull while the rebuild is no more than twice the push
	// cost: the same scan then also yields a dense CSR for every later
	// pass. Survivors whose rows dwarf the batch's (low-ε sweeps over
	// skewed graphs) keep pushing until the ratio improves.
	due := canCompact && len(st.live)*compactLiveDivisor <= st.n
	pull := pushVol > st.liveRowVol || (due && st.liveRowVol < 2*pushVol)
	if o.hooks.mode != nil {
		o.hooks.mode(pass, pull)
	}
	switch {
	case pull && canCompact && len(st.live) > 0:
		// An emptied frontier skips the rebuild: the loop is about to
		// exit, so compacting to a zero-node CSR would be pure waste.
		st.compact(o)
		return st.g.NumEdges()
	case pull:
		return st.pullRecount()
	default:
		return edges - st.pushDecrement(batch, pass)
	}
}

// weightedPull is the weighted decrement pass: each survivor pulls the
// weights of its just-removed neighbors out of its weighted degree, in
// adjacency order; an edge between two removed vertices is charged
// once, to its larger endpoint. To keep the weighted trace
// bit-identical across worker counts AND compactions, the float
// reductions are grouped by fixed ChunkSize-id blocks of the ORIGINAL
// vertex space: each original chunk's weight/edge partial is summed by
// exactly one task in ascending original order (the frontier is sorted
// and relabeling is order-preserving), and the caller folds the slots
// in ascending chunk order — exactly the grouping a frontier-less
// chunked sweep over [0, n) used, so the density trace never moves by
// a ULP. A push direction is deliberately absent here: pushing would
// reorder float subtractions into batch-adjacency order.
//
// Call BEFORE filterLive: st.live must still contain this pass's
// removals.
func (st *peelState) weightedPull(pass int, wslots []float64, eslots []int64) {
	g, wdeg, rp, live := st.g, st.wdeg, st.removedPass, st.live
	p32 := int32(pass)
	chunks := par.NumChunks(st.origN)
	st.pool.ForEach(chunks, func(c int) {
		lo32 := int32(c * par.ChunkSize)
		hi32 := lo32 + par.ChunkSize
		i := sort.Search(len(live), func(i int) bool { return st.orig(live[i]) >= lo32 })
		j := i + sort.Search(len(live)-i, func(j int) bool { return st.orig(live[i+j]) >= hi32 })
		var wsub float64
		var esub int64
		for _, v := range live[i:j] {
			switch {
			case rp[v] == 0:
				ws := g.NeighborWeights(v)
				for k, u := range g.Neighbors(v) {
					if rp[u] == p32 {
						w := 1.0
						if ws != nil {
							w = ws[k]
						}
						wdeg[v] -= w
						wsub += w
						esub++
					}
				}
			case rp[v] == p32:
				ws := g.NeighborWeights(v)
				for k, u := range g.Neighbors(v) {
					if rp[u] == p32 && u < v {
						w := 1.0
						if ws != nil {
							w = ws[k]
						}
						wsub += w
						esub++
					}
				}
			}
		}
		wslots[c] = wsub
		eslots[c] = esub
	})
}

// maybeCompactWeighted is the weighted peeler's end-of-pass compaction
// policy. The weighted decrement can never fuse with a rebuild (its
// float subtractions are pinned to original-chunk order), so a
// compaction is a whole extra O(liveRowVol) scan over the surviving
// rows. It pays only once those rows have actually decayed: when at
// least half their entries point at dead neighbors (liveRowVol ≥
// 2·2·edges), every future pass saves at least half the rebuild cost.
// That shape arises when survivors are hubs that just lost their
// leaves; a dense core whose rows are still mostly alive — the usual
// power-law collapse — skips the rebuild, because it would trade a
// full scan for marginal savings on the final pass or two.
func (st *peelState) maybeCompactWeighted(o Opts, edges int64) {
	if len(st.live) == 0 || st.n < compactMinNodes || len(st.live)*compactLiveDivisor > st.n {
		return
	}
	if st.liveRowVol < 4*edges {
		return
	}
	st.compact(o)
}

// compact rebuilds the CSR around the live set, remapping all
// current-space state through the order-preserving relabel. Integer
// degrees are read off the compacted row lengths — each row holds
// exactly the live neighbors, which is what lets the unweighted pull
// pass fuse into the rebuild; weighted degrees are running float
// accumulators and are copied bit-exactly.
func (st *peelState) compact(o Opts) {
	keep := st.live
	prevN := st.n
	ng := st.g.CompactInto(keep, &st.cs[st.csTurn])
	st.csTurn ^= 1
	nn := len(keep)
	origOf := make([]int32, nn)
	for i, u := range keep {
		origOf[i] = st.orig(u)
	}
	if st.deg != nil {
		nd := make([]int32, nn)
		for i := range nd {
			nd[i] = int32(ng.Degree(int32(i)))
		}
		st.deg = nd
	}
	if st.wdeg != nil {
		nw := make([]float64, nn)
		for i, u := range keep {
			nw[i] = st.wdeg[u]
		}
		st.wdeg = nw
	}
	st.removedPass = make([]int32, nn) // every kept vertex is alive
	for i := range keep {
		keep[i] = int32(i) // st.live aliases keep
	}
	st.g = ng
	st.n = nn
	st.origOf = origOf
	st.liveRowVol = 2 * ng.NumEdges()
	if o.hooks.compacted != nil {
		o.hooks.compacted(nn, prevN)
	}
}

// survivorsAfter returns the original-space nodes still alive strictly
// after bestPass (removedAt == 0 means never removed).
func survivorsAfter(removedAt []int32, bestPass int) []int32 {
	var out []int32
	for u, p := range removedAt {
		if p == 0 || int(p) > bestPass {
			out = append(out, int32(u))
		}
	}
	return out
}
