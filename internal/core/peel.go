package core

import (
	"math"
	"sort"

	"densestream/internal/graph"
	"densestream/internal/par"
)

// This file is the shared layout machinery of the peel hot path. The
// paper's promise is that one pass is a cheap linear scan, so the
// in-memory engines are built to run at memory bandwidth:
//
//   - a live-vertex frontier: the candidate scan walks a compacted,
//     ascending slice of the surviving vertex ids in fixed 2048-id
//     blocks (par.Sweeper), so a pass costs O(live), not O(n), once the
//     graph has started to shrink. For the integer engines the scan is
//     fused: one sweep collects the batch, stamps it removed, filters
//     the frontier in place, and accumulates the pass sums the
//     decrement needs;
//   - bitset membership: aliveness and batch membership live in packed
//     bitsets (n/8 bytes instead of 4n), so the random membership
//     gathers of the pull recount and the weighted decrement stay
//     L1/L2-resident instead of missing on a 4-byte-per-vertex stamp
//     array;
//   - adaptive push/pull decrements: a small removed batch pushes
//     decrements along its own adjacency — blind scatter decrements
//     with no aliveness gather at all; a dead vertex's degree slot is
//     stale by construction and never read again — while a batch whose
//     adjacency outweighs the survivors' flips to a pull pass that
//     recounts every survivor's live degree directly from the CSR, the
//     direction-optimizing trade of Beamer-style BFS, decided by graph
//     shape alone so every worker count takes the same path;
//   - periodic CSR compaction with a hub-first relabel: once the live
//     fraction drops below 1/compactLiveDivisor, the surviving
//     subgraph is rebuilt into a dense CSR ordered by surviving degree
//     (graph.CompactIntoDegreeOrdered, scratch reused). Dense rows pack
//     to the front, equal-length rows become fixed-stride banks the
//     pull recount walks with counted branch-light loops, and the
//     orig() mapping composes through the permutation so emitted
//     Solutions are unchanged. The weighted engine keeps the
//     order-preserving relabel: its float reductions are grouped by
//     original-id chunks and depend on the frontier staying ascending
//     in original order.
//
// Every decision above is a function of the graph shape only — never
// of the worker count — which preserves the engines' bit-identical
// determinism contract (see internal/par).
const (
	// compactMinNodes: CSRs smaller than this are never compacted —
	// they are already cache resident and the rebuild bookkeeping
	// would dominate.
	compactMinNodes = 1 << 10
	// compactLiveDivisor: a compaction is "due" — and tilts the
	// decrement direction toward pull — once the live set is at most
	// 1/compactLiveDivisor of the current CSR's node count. Rebuilds
	// are not limited to due passes: any cost-chosen pull pass also
	// fuses a rebuild, but there the scan over the surviving rows was
	// happening regardless (pushVol > liveRowVol), so the rebuild adds
	// only the writes of a strictly smaller CSR. Either way total
	// rebuild work stays O(n + m) over a run.
	compactLiveDivisor = 4
)

// peelHooks are package-internal observation points for the layout
// tests: the parity sweep uses them to assert that both decrement
// modes, the compactor, the degree-ordered relabel, and the banked
// pull path actually ran. Nil hooks are never called; all hooks fire
// on the driver goroutine.
type peelHooks struct {
	mode      func(pass int, pull bool)
	compacted func(liveN, prevN int)
	relabeled func(liveN int)          // a degree-ordered (hub-first) rebuild ran
	banked    func(liveN, classes int) // a pull recount took the fixed-stride banks
}

// peelState is the mutable state of an undirected peel run. Vertex ids
// live in two spaces: the "current" space of the (possibly compacted)
// CSR, in which all per-pass state is indexed, and the original space
// of the input graph, in which removal passes are recorded for the
// final Set. The unweighted engines relabel hub-first at compaction
// (composing origOf through the permutation); the weighted engine
// relabels order-preservingly, so for it ascending current order is
// always ascending original order — the invariant its chunk-grouped
// float reductions need.
type peelState struct {
	pool  *par.Pool
	g     *graph.Undirected // current CSR (input graph or a compaction of it)
	n     int               // current CSR node count
	origN int

	origOf     []int32      // current id -> original id; nil = identity
	live       []int32      // ascending current ids of the surviving vertices
	liveRowVol int64        // Σ CSR row length over live (the pull cost)
	alive      graph.Bitset // current space; bit set = not yet removed
	inBatch    graph.Bitset // current space; bit set = removed this pass
	removedAt  []int32      // original space; 0 = never removed
	deg        []int32      // live degrees (unweighted peelers)
	wdeg       []float64    // live weighted degrees (weighted peeler)

	col      *par.Collector
	batch    []int32
	router   *par.Router
	sweep    par.Sweeper
	volSlots []int64 // per-chunk row-volume partials of the fused scan
	degSlots []int64 // per-chunk live-degree partials of the fused scan
	cs       [2]graph.CompactScratch
	csTurn   int

	// compactTilt scales how far a due compaction may exceed the push
	// cost before the engine still takes it (see decrement). A rebuild
	// is an investment repaid by later passes, and the pass count grows
	// as log_{1+ε} n: slow sweeps (ε < 1) amortize an expensive rebuild
	// over many passes and use 4; aggressive sweeps peel out in a
	// handful of passes, so only a rebuild within 2× of the push cost
	// can pay for itself. Direction choices are shape-only — the tilt
	// never changes emitted Solutions, only wall-clock.
	compactTilt int64
}

func newPeelState(g *graph.Undirected, pool *par.Pool, weighted bool) *peelState {
	n := g.NumNodes()
	st := &peelState{
		pool: pool, g: g, n: n, origN: n,
		live:        make([]int32, n),
		liveRowVol:  2 * g.NumEdges(),
		alive:       graph.NewBitset(n),
		inBatch:     graph.NewBitset(n),
		removedAt:   make([]int32, n),
		col:         par.NewCollector(n),
		volSlots:    make([]int64, par.NumChunks(n)),
		degSlots:    make([]int64, par.NumChunks(n)),
		compactTilt: 2,
	}
	st.alive.Fill(n)
	if weighted {
		st.wdeg = make([]float64, n)
		pool.ForChunks(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				st.live[u] = int32(u)
				st.wdeg[u] = g.WeightedDegree(int32(u))
			}
		})
	} else {
		st.deg = make([]int32, n)
		pool.ForChunks(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				st.live[u] = int32(u)
				st.deg[u] = int32(g.Degree(int32(u)))
			}
		})
	}
	return st
}

// orig maps a current vertex id back to its original id.
func (st *peelState) orig(u int32) int32 {
	if st.origOf == nil {
		return u
	}
	return st.origOf[u]
}

// cutToInt floors the removal threshold to the integer domain the
// unweighted scans compare in: deg ≤ cut ⟺ deg ≤ ⌊cut⌋ for integer
// degrees, and the floor turns a float compare per vertex into an
// int32 one.
func cutToInt(cut float64) int32 {
	f := math.Floor(cut)
	if f >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(f)
}

// stampBatch flips the batch's bits out of alive and into inBatch.
// Bitset words are shared between neighboring ids, so bit mutation is
// confined to this driver-goroutine loop rather than the parallel
// scan.
func (st *peelState) stampBatch(batch []int32) {
	for _, u := range batch {
		st.alive.Clear(u)
		st.inBatch.Set(u)
	}
}

// clearBatch retires the pass's inBatch bits once the decrement is
// done (compaction resets the bitsets wholesale instead).
func (st *peelState) clearBatch(batch []int32) {
	for _, u := range batch {
		st.inBatch.Clear(u)
	}
}

// scanRemove is the fused per-pass sweep of the unweighted engines:
// one batched walk over the live frontier collects the below-cut
// vertices (ascending, chunk-merged), records their removal pass in
// original space, filters them out of the frontier in place, and
// accumulates the two pass sums the decrement needs — the batch's CSR
// row volume (the push cost) and its live-degree sum (exactly the
// edges the pass takes down, counting intra-batch edges twice). The
// batch's bitset stamps are applied after the sweep, on the driver
// goroutine.
func (st *peelState) scanRemove(o Opts, cut float64, pass int) (pushVol, degSum int64, err error) {
	st.col.Reset()
	g, deg := st.g, st.deg
	origOf, removedAt := st.origOf, st.removedAt
	p32 := int32(pass)
	icut := cutToInt(cut)
	chunks := par.NumChunks(len(st.live))
	live, err := st.sweep.Sweep(o.Ctx, st.pool, st.live, func(c int, block []int32) int {
		var vol, ds int64
		w := 0
		for _, u := range block {
			if deg[u] > icut {
				block[w] = u
				w++
				continue
			}
			st.col.Append(c, u)
			ou := u
			if origOf != nil {
				ou = origOf[u]
			}
			removedAt[ou] = p32
			vol += int64(g.Degree(u))
			ds += int64(deg[u])
		}
		st.volSlots[c] = vol
		st.degSlots[c] = ds
		return w
	})
	if err != nil {
		return 0, 0, err
	}
	st.live = live
	st.batch = st.col.Merge(st.batch[:0])
	st.stampBatch(st.batch)
	for c := 0; c < chunks; c++ {
		pushVol += st.volSlots[c]
		degSum += st.degSlots[c]
	}
	st.liveRowVol -= pushVol
	return pushVol, degSum, nil
}

// scanRemoveWeighted is the weighted fused sweep: it collects and
// stamps the batch and sums its row volume, but leaves the frontier
// unfiltered — weightedPull needs st.live to still contain this
// pass's removals. Call filterLive(pushVol) after the pull.
func (st *peelState) scanRemoveWeighted(o Opts, cut float64, pass int) (pushVol int64, err error) {
	st.col.Reset()
	g, wdeg := st.g, st.wdeg
	origOf, removedAt := st.origOf, st.removedAt
	p32 := int32(pass)
	chunks := par.NumChunks(len(st.live))
	_, err = st.sweep.Sweep(o.Ctx, st.pool, st.live, func(c int, block []int32) int {
		var vol int64
		for _, u := range block {
			if wdeg[u] <= cut+1e-12 { // historical slack on the cut
				st.col.Append(c, u)
				ou := u
				if origOf != nil {
					ou = origOf[u]
				}
				removedAt[ou] = p32
				vol += int64(g.Degree(u))
			}
		}
		st.volSlots[c] = vol
		return len(block)
	})
	if err != nil {
		return 0, err
	}
	st.batch = st.col.Merge(st.batch[:0])
	st.stampBatch(st.batch)
	for c := 0; c < chunks; c++ {
		pushVol += st.volSlots[c]
	}
	return pushVol, nil
}

// scanCandidates collects the live vertices with degree at most cut
// into st.batch without removing anything: AtLeastK keeps only a
// quota of the candidates, so stamping and filtering wait for the
// selection (markRemoved, filterLive).
func (st *peelState) scanCandidates(o Opts, cut float64) error {
	st.col.Reset()
	deg := st.deg
	icut := cutToInt(cut)
	if _, err := st.sweep.Sweep(o.Ctx, st.pool, st.live, func(c int, block []int32) int {
		for _, u := range block {
			if deg[u] <= icut {
				st.col.Append(c, u)
			}
		}
		return len(block)
	}); err != nil {
		return err
	}
	st.batch = st.col.Merge(st.batch[:0])
	return nil
}

// markRemoved stamps a selected batch (not necessarily ascending)
// removed in both id spaces and returns its CSR row volume and
// live-degree sum — the same pass sums the fused scans produce.
func (st *peelState) markRemoved(batch []int32, pass int) (pushVol, degSum int64) {
	g, deg := st.g, st.deg
	p32 := int32(pass)
	chunks := par.NumChunks(len(batch))
	st.pool.ForChunks(len(batch), func(c, lo, hi int) {
		var vol, ds int64
		for _, u := range batch[lo:hi] {
			st.removedAt[st.orig(u)] = p32
			vol += int64(g.Degree(u))
			ds += int64(deg[u])
		}
		st.volSlots[c] = vol
		st.degSlots[c] = ds
	})
	st.stampBatch(batch)
	for c := 0; c < chunks; c++ {
		pushVol += st.volSlots[c]
		degSum += st.degSlots[c]
	}
	return pushVol, degSum
}

// filterLive drops this pass's removals from the frontier and deducts
// their row volume. The in-place ascending filter is sequential — it
// is a single O(live) sweep over memory the candidate scan just
// touched — and therefore trivially worker-invariant. The unweighted
// engines fuse this into scanRemove; only the quota and weighted
// paths, whose removal sets are fixed after the scan, still call it.
func (st *peelState) filterLive(pushVol int64) {
	alive := st.alive
	live := st.live[:0]
	for _, u := range st.live {
		if alive.Test(u) {
			live = append(live, u)
		}
	}
	st.live = live
	st.liveRowVol -= pushVol
}

// pushDecrement scatters the removed batch's adjacency into the degree
// array and returns the number of edges removed this pass. The
// sequential decrements are blind — a dead neighbor's degree slot is
// stale by construction and never read again — so the hot loop carries
// no aliveness gather at all; the only lookup is the L1-resident
// in-batch bitset that discounts each intra-batch edge once. The edge
// count is then pure algebra: the batch's live-degree sum counts a
// batch↔survivor edge once and an intra-batch edge twice. Past one
// worker the decrements ride the owned-lane router (no atomics); only
// live targets are routed, which skips the same dead slots the
// sequential path silently corrupts — divergence confined to memory
// no path reads.
func (st *peelState) pushDecrement(batch []int32, degSum int64) int64 {
	g, deg, inBatch := st.g, st.deg, st.inBatch
	if st.pool.Workers() == 1 {
		var dup int64
		for _, u := range batch {
			// Branch-free discount: the v>u comparison is a coin flip on
			// intra-batch edges, so testing it with a branch mispredicts
			// half the loop; the sign-bit mask and the L1-resident bit
			// gather keep the pipeline full.
			for _, v := range g.Neighbors(u) {
				deg[v]--
				dup += int64((uint32(u-v) >> 31) & uint32(inBatch.Bit(v)))
			}
		}
		return degSum - dup
	}
	if st.router == nil {
		st.router = par.NewRouter(st.origN)
	}
	st.router.Begin(par.NumChunks(len(batch)))
	alive := st.alive
	dup := st.pool.SumInt64(len(batch), func(c, lo, hi int) int64 {
		var d int64
		for _, u := range batch[lo:hi] {
			for _, v := range g.Neighbors(u) {
				if alive.Test(v) {
					st.router.Route(c, v)
				} else if v > u && inBatch.Test(v) {
					d++
				}
			}
		}
		return d
	})
	st.router.Drain(st.pool, func(_ int, ids []int32) {
		for _, v := range ids {
			deg[v]--
		}
	})
	return degSum - dup
}

// pullRecount recomputes every survivor's degree directly from the CSR
// and returns the surviving edge count; the frontier must already be
// filtered. Chosen over push when the removed batch's adjacency
// outweighs the survivors' (huge removal batches), where rescanning
// the survivors is the cheaper direction. On a degree-ordered CSR the
// banked region runs fixed-stride counted loops (graph.RowBanks);
// spill-lane hubs and pre-compaction graphs walk plain CSR rows. Both
// use the branch-free alive-bit gather.
func (st *peelState) pullRecount() int64 {
	g, deg, alive, live := st.g, st.deg, st.alive, st.live
	banks := g.RowBanks()
	total := st.pool.SumInt64(len(live), func(_, lo, hi int) int64 {
		ids := live[lo:hi]
		if banks == nil {
			return pullRows(g, deg, alive, ids)
		}
		spill := sort.Search(len(ids), func(i int) bool { return ids[i] >= banks.SpillEnd })
		s := pullRows(g, deg, alive, ids[:spill])
		return s + banks.CountLive(ids[spill:], alive, deg)
	})
	return total / 2
}

// pullRows is the per-row pull recount over plain CSR rows.
func pullRows(g *graph.Undirected, deg []int32, alive graph.Bitset, ids []int32) int64 {
	var s int64
	for _, v := range ids {
		cnt := int32(0)
		for _, nb := range g.Neighbors(v) {
			cnt += alive.Bit(nb)
		}
		deg[v] = cnt
		s += int64(cnt)
	}
	return s
}

// decrement applies one pass's removals to the degree state through
// whichever direction is cheaper, compacts the CSR when the live set
// has shrunk past the threshold, and returns the new surviving edge
// count. When a pull pass and a compaction coincide — the huge-batch
// case — the two fuse: compacting IS the pull (a survivor's row length
// in the compacted CSR is exactly its live-neighbor count), so the
// surviving adjacency is scanned once instead of twice. All paths
// produce identical integer state; the choices are pure wall-clock
// trades fixed by the graph shape.
func (st *peelState) decrement(o Opts, batch []int32, pass int, edges, pushVol, degSum int64) int64 {
	canCompact := st.n >= compactMinNodes
	// The direction is the per-pass cost minimum — push touches the
	// batch's rows, pull the survivors' — except that a due compaction
	// (live set under 1/compactLiveDivisor of the CSR) tilts the choice
	// toward pull while the rebuild stays within compactTilt pushes:
	// the same scan then also yields a dense, degree-ordered CSR for
	// every later pass. Survivors whose rows dwarf even that — on
	// skewed graphs the hubs carrying most of the adjacency volume —
	// keep pushing until the ratio improves.
	due := canCompact && len(st.live)*compactLiveDivisor <= st.n
	pull := pushVol > st.liveRowVol || (due && st.liveRowVol < st.compactTilt*pushVol)
	if o.hooks.mode != nil {
		o.hooks.mode(pass, pull)
	}
	switch {
	case pull && canCompact && len(st.live) > 0:
		// An emptied frontier skips the rebuild: the loop is about to
		// exit, so compacting to a zero-node CSR would be pure waste.
		st.compact(o)
		return st.g.NumEdges()
	case pull:
		if o.hooks.banked != nil && st.g.RowBanks() != nil {
			o.hooks.banked(len(st.live), st.g.RowBanks().Classes())
		}
		st.clearBatch(batch)
		return st.pullRecount()
	default:
		sub := st.pushDecrement(batch, degSum)
		st.clearBatch(batch)
		return edges - sub
	}
}

// weightedPull is the weighted decrement pass: each survivor pulls the
// weights of its just-removed neighbors out of its weighted degree, in
// adjacency order; an edge between two removed vertices is charged
// once, to its larger endpoint. To keep the weighted trace
// bit-identical across worker counts AND compactions, the float
// reductions are grouped by fixed ChunkSize-id blocks of the ORIGINAL
// vertex space: each original chunk's weight/edge partial is summed by
// exactly one task in ascending original order (the frontier is sorted
// and the weighted relabel is order-preserving), and the caller folds
// the slots in ascending chunk order — exactly the grouping a
// frontier-less chunked sweep over [0, n) used, so the density trace
// never moves by a ULP. A push direction is deliberately absent here:
// pushing would reorder float subtractions into batch-adjacency order.
//
// Call BEFORE filterLive: st.live must still contain this pass's
// removals (alive bit off, inBatch bit on).
func (st *peelState) weightedPull(wslots []float64, eslots []int64) {
	g, wdeg, live := st.g, st.wdeg, st.live
	alive, inBatch := st.alive, st.inBatch
	chunks := par.NumChunks(st.origN)
	st.pool.ForEach(chunks, func(c int) {
		lo32 := int32(c * par.ChunkSize)
		hi32 := lo32 + par.ChunkSize
		i := sort.Search(len(live), func(i int) bool { return st.orig(live[i]) >= lo32 })
		j := i + sort.Search(len(live)-i, func(j int) bool { return st.orig(live[i+j]) >= hi32 })
		var wsub float64
		var esub int64
		for _, v := range live[i:j] {
			switch {
			case alive.Test(v):
				ws := g.NeighborWeights(v)
				for k, u := range g.Neighbors(v) {
					if inBatch.Test(u) {
						w := 1.0
						if ws != nil {
							w = ws[k]
						}
						wdeg[v] -= w
						wsub += w
						esub++
					}
				}
			case inBatch.Test(v):
				ws := g.NeighborWeights(v)
				for k, u := range g.Neighbors(v) {
					if u < v && inBatch.Test(u) {
						w := 1.0
						if ws != nil {
							w = ws[k]
						}
						wsub += w
						esub++
					}
				}
			}
		}
		wslots[c] = wsub
		eslots[c] = esub
	})
}

// maybeCompactWeighted is the weighted peeler's end-of-pass compaction
// policy. The weighted decrement can never fuse with a rebuild (its
// float subtractions are pinned to original-chunk order), so a
// compaction is a whole extra O(liveRowVol) scan over the surviving
// rows. It pays only once those rows have actually decayed: when at
// least half their entries point at dead neighbors (liveRowVol ≥
// 2·2·edges), every future pass saves at least half the rebuild cost.
// That shape arises when survivors are hubs that just lost their
// leaves; a dense core whose rows are still mostly alive — the usual
// power-law collapse — skips the rebuild, because it would trade a
// full scan for marginal savings on the final pass or two.
func (st *peelState) maybeCompactWeighted(o Opts, edges int64) {
	if len(st.live) == 0 || st.n < compactMinNodes || len(st.live)*compactLiveDivisor > st.n {
		return
	}
	if st.liveRowVol < 4*edges {
		return
	}
	st.compactWeighted(o)
}

// compact rebuilds the CSR around the live set through the hub-first
// relabel: graph.CompactIntoDegreeOrdered ranks survivors by surviving
// degree and returns the permutation, which origOf composes through,
// so the recorded Solutions never see the reordering. Integer degrees
// are read off the compacted row lengths — each row holds exactly the
// live neighbors, which is what lets the unweighted pull pass fuse
// into the rebuild — and later pull recounts ride the fixed-stride
// row banks the ordered layout exposes.
func (st *peelState) compact(o Opts) {
	keep := st.live
	prevN := st.n
	ng, order := st.g.CompactIntoDegreeOrdered(keep, &st.cs[st.csTurn])
	st.csTurn ^= 1
	nn := len(keep)
	origOf := make([]int32, nn)
	for r, u := range order[:nn] {
		origOf[r] = st.orig(u)
	}
	nd := make([]int32, nn)
	for i := range nd {
		nd[i] = int32(ng.Degree(int32(i)))
	}
	st.deg = nd
	st.finishCompact(o, ng, origOf, prevN)
	if o.hooks.relabeled != nil {
		o.hooks.relabeled(nn)
	}
}

// compactWeighted rebuilds the CSR around the live set with the
// order-preserving relabel the weighted engine requires (see
// weightedPull); weighted degrees are running float accumulators and
// are copied bit-exactly.
func (st *peelState) compactWeighted(o Opts) {
	keep := st.live
	prevN := st.n
	ng := st.g.CompactInto(keep, &st.cs[st.csTurn])
	st.csTurn ^= 1
	nn := len(keep)
	origOf := make([]int32, nn)
	nw := make([]float64, nn)
	for i, u := range keep {
		origOf[i] = st.orig(u)
		nw[i] = st.wdeg[u]
	}
	st.wdeg = nw
	st.finishCompact(o, ng, origOf, prevN)
}

// finishCompact swaps in the rebuilt CSR and resets the current-space
// state: every kept vertex is alive, no pass is in flight, and the
// frontier is the identity over the new space (st.live aliases the
// keep slice the caller passed to the compactor).
func (st *peelState) finishCompact(o Opts, ng *graph.Undirected, origOf []int32, prevN int) {
	keep := st.live
	nn := len(keep)
	for i := range keep {
		keep[i] = int32(i)
	}
	st.alive.Fill(nn)
	st.inBatch.Zero()
	st.g = ng
	st.n = nn
	st.origOf = origOf
	st.liveRowVol = 2 * ng.NumEdges()
	if o.hooks.compacted != nil {
		o.hooks.compacted(nn, prevN)
	}
}

// survivorsAfter returns the original-space nodes still alive strictly
// after bestPass (removedAt == 0 means never removed).
func survivorsAfter(removedAt []int32, bestPass int) []int32 {
	var out []int32
	for u, p := range removedAt {
		if p == 0 || int(p) > bestPass {
			out = append(out, int32(u))
		}
	}
	return out
}
