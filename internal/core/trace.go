// Package core implements the paper's three peeling algorithms:
//
//   - Algorithm 1: (2+2ε)-approximate densest subgraph in undirected
//     graphs, removing every node of degree ≤ 2(1+ε)·ρ(S) per pass.
//   - Algorithm 2: (3+3ε)-approximate densest-at-least-k subgraph,
//     removing only the ε/(1+ε)·|S| lowest-degree candidates per pass.
//   - Algorithm 3: (2+2ε)-approximate directed densest subgraph for a
//     known side ratio c, plus the powers-of-δ sweep over c.
//
// All algorithms are implemented over O(n) node state (alive flags plus
// degree counters) so the streaming implementations in internal/stream can
// share their per-pass logic and be tested for exact agreement.
package core

// PassStat records the state of the remaining graph after one pass of a
// peeling algorithm; index 0 is the initial state before any removal.
// The JSON tags are part of the public Solution wire contract.
type PassStat struct {
	Pass    int     `json:"pass"`    // 0 for the initial state, then 1, 2, ...
	Nodes   int     `json:"nodes"`   // |S| after this pass (undirected), or |S|+|T| (directed)
	Edges   int64   `json:"edges"`   // |E(S)| or |E(S,T)| after this pass
	Density float64 `json:"density"` // ρ after this pass
	Removed int     `json:"removed"` // nodes removed in this pass
}

// DirectedPassStat records the state after one pass of Algorithm 3.
type DirectedPassStat struct {
	Pass       int     `json:"pass"`
	SizeS      int     `json:"sizeS"`
	SizeT      int     `json:"sizeT"`
	Edges      int64   `json:"edges"` // |E(S,T)|
	Density    float64 `json:"density"`
	RemovedS   int     `json:"removedS"`
	RemovedT   int     `json:"removedT"`
	PeeledSide byte    `json:"peeledSide"` // 'S' or 'T' ('-' for the initial state)
}
