package densestream_test

// One benchmark per table and figure of the paper's evaluation (§6),
// plus the DESIGN.md ablations and micro-benchmarks of the primitives.
// Each experiment benchmark regenerates the corresponding artifact via
// internal/experiments (the same code path as cmd/experiments); run with
// -v to see the regenerated rows.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	ds "densestream"
	"densestream/internal/experiments"
)

const benchScale = 1

func benchReport(b *testing.B, fn func() (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

// BenchmarkTable1_Datasets regenerates Table 1 (dataset parameters).
func BenchmarkTable1_Datasets(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Table1(benchScale) })
}

// BenchmarkTable2_Approximation regenerates Table 2 (empirical
// approximation ratio against the exact flow solver).
func BenchmarkTable2_Approximation(b *testing.B) {
	benchReport(b, experiments.Table2)
}

// BenchmarkFig61_EpsilonSweep regenerates Figure 6.1 (ε vs approximation
// and passes).
func BenchmarkFig61_EpsilonSweep(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure61(benchScale) })
}

// BenchmarkFig62_DensityPerPass regenerates Figure 6.2 (relative density
// per pass).
func BenchmarkFig62_DensityPerPass(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure62(benchScale) })
}

// BenchmarkFig63_ShrinkagePerPass regenerates Figure 6.3 (remaining
// nodes/edges per pass).
func BenchmarkFig63_ShrinkagePerPass(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure63(benchScale) })
}

// BenchmarkTable3_DeltaEpsilon regenerates Table 3 (directed ρ for δ × ε).
func BenchmarkTable3_DeltaEpsilon(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Table3(benchScale) })
}

// BenchmarkFig64_CSweepLJ regenerates Figure 6.4 (density and passes vs c
// on lj-like).
func BenchmarkFig64_CSweepLJ(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure64(benchScale) })
}

// BenchmarkFig65_DirectedTrace regenerates Figure 6.5 (|S|, |T|, |E(S,T)|
// per pass at the best c).
func BenchmarkFig65_DirectedTrace(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure65(benchScale) })
}

// BenchmarkFig66_CSweepTwitter regenerates Figure 6.6 (density and passes
// vs c on twitter-like).
func BenchmarkFig66_CSweepTwitter(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure66(benchScale) })
}

// BenchmarkTable4_Sketching regenerates Table 4 (sketched vs exact
// density ratio and memory).
func BenchmarkTable4_Sketching(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Table4(benchScale) })
}

// BenchmarkFig67_MapReduceTime regenerates Figure 6.7 (MapReduce
// wall-clock per pass).
func BenchmarkFig67_MapReduceTime(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure67(benchScale) })
}

// BenchmarkAblation_BatchVsGreedy compares Algorithm 1 with Charikar's
// greedy (A1).
func BenchmarkAblation_BatchVsGreedy(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.AblationBatchVsGreedy(benchScale) })
}

// BenchmarkAblation_DirectedSideRule compares the |S|/|T| side rule with
// the naive max-degree rule (A2).
func BenchmarkAblation_DirectedSideRule(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.AblationDirectedSideRule(benchScale) })
}

// BenchmarkAblation_PassLowerBound measures passes on the Lemma 5
// adversarial instance (A3).
func BenchmarkAblation_PassLowerBound(b *testing.B) {
	benchReport(b, experiments.AblationPassLowerBound)
}

// BenchmarkAblation_Combiner measures the combiner's effect on the
// degree job's shuffle volume (A4).
func BenchmarkAblation_Combiner(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.AblationCombiner(benchScale) })
}

// BenchmarkAblation_ExactVsApprox measures the runtime crossover between
// exact flow, greedy, and Algorithm 1 (A5).
func BenchmarkAblation_ExactVsApprox(b *testing.B) {
	benchReport(b, experiments.AblationExactVsApprox)
}

// --- micro-benchmarks of the primitives ---

func benchGraph(b *testing.B) *ds.UndirectedGraph {
	b.Helper()
	g, _, err := ds.GeneratePlantedDense(20000, 160000, 2.1, 120, 0.8, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPeelUndirected measures Algorithm 1 throughput at ε=1.
func BenchmarkPeelUndirected(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Undirected(g, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(g.NumEdges() * 8)
}

// BenchmarkGreedyPeel measures Charikar's greedy on the same graph.
func BenchmarkGreedyPeel(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Greedy(g); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(g.NumEdges() * 8)
}

// BenchmarkExactFlow measures the exact solver on a smaller instance.
func BenchmarkExactFlow(b *testing.B) {
	g, _, err := ds.GeneratePlantedDense(2000, 8000, 2.2, 40, 0.9, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectedPeel measures Algorithm 3 at c=1, ε=1.
func BenchmarkDirectedPeel(b *testing.B) {
	g, err := ds.GenerateChungLuDirected(20000, 160000, 2.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Directed(g, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(g.NumEdges() * 8)
}

// BenchmarkStreamingPeel measures the streaming peeler against an
// in-memory stream (isolates per-pass scan cost).
func BenchmarkStreamingPeel(b *testing.B) {
	g := benchGraph(b)
	es := ds.StreamGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Streaming(es, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(g.NumEdges() * 8)
}

// BenchmarkSketchUpdate measures raw Count-Sketch update throughput.
func BenchmarkSketchUpdate(b *testing.B) {
	r, _, err := ds.StreamingSketched(ds.StreamGraph(benchGraph(b)), 1,
		ds.SketchConfig{Tables: 5, Buckets: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	_ = r
	// The full sketched run above warms the path; now measure per-update.
	dcStream := ds.StreamGraph(benchGraph(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.StreamingSketched(dcStream, 1, ds.SketchConfig{Tables: 5, Buckets: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelBenchGraph lazily builds the ≥1M-edge graph shared by the
// worker-sweep benchmarks, so `go test -bench` runs that skip them pay
// nothing.
var parallelBenchGraph = sync.OnceValues(func() (*ds.UndirectedGraph, error) {
	return ds.GenerateChungLu(200000, 1<<20, 2.2, 1)
})

// BenchmarkParallelPeel sweeps the worker count of the sharded peeling
// engine on a ~1M-edge power-law graph. Results are bit-identical
// across the sweep; only wall-clock should move.
func BenchmarkParallelPeel(b *testing.B) {
	g, err := parallelBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			for i := 0; i < b.N; i++ {
				if _, err := ds.Undirected(g, 1, ds.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelStreamingPeel is the same sweep against the sharded
// in-memory stream scanner (striped counter lanes, one shard per
// worker).
func BenchmarkParallelStreamingPeel(b *testing.B) {
	g, err := parallelBenchGraph()
	if err != nil {
		b.Fatal(err)
	}
	es := ds.StreamGraph(g)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			for i := 0; i < b.N; i++ {
				if _, err := ds.Streaming(es, 1, ds.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fileStreamBenchPath lazily writes a ~2M-edge power-law graph to a
// temp edge-list file shared by the disk-streaming benchmarks.
var fileStreamBenchPath = sync.OnceValues(func() (string, error) {
	g, err := ds.GenerateChungLu(400000, 2<<20, 2.2, 1)
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "densestream-bench-*.txt")
	if err != nil {
		return "", err
	}
	if err := ds.WriteUndirected(f, g); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return f.Name(), nil
})

// BenchmarkFileStreamPeel sweeps the shard/worker count of `-algo
// stream` on a multi-million-edge disk input: the per-pass scan splits
// into byte-range file shards, so wall-clock should drop with the
// worker count while results stay bit-identical (the out-of-core
// acceptance benchmark). Bytes/op counts the actual disk-scan volume.
func BenchmarkFileStreamPeel(b *testing.B) {
	path, err := fileStreamBenchPath()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var scanned int64
			for i := 0; i < b.N; i++ {
				sol, err := ds.Solve(context.Background(),
					ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendStream, Eps: 1, Path: path},
					ds.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				scanned = sol.Stats.BytesScanned
			}
			b.SetBytes(scanned)
		})
	}
}

// binaryStreamBench lazily prepares the binary-format disk benchmark:
// the same ~2M-edge power-law graph as BenchmarkFileStreamPeel, written
// as a binary columnar file, plus a one-shot timing of the resident
// solve on the same graph for the disk-vs-resident ratio metric.
var binaryStreamBench = sync.OnceValues(func() (*binaryBenchState, error) {
	g, err := ds.GenerateChungLu(400000, 2<<20, 2.2, 1)
	if err != nil {
		return nil, err
	}
	f, err := os.CreateTemp("", "densestream-bench-*.bsg")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	f.Close()
	if err := ds.WriteUndirectedBinary(path, g); err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := ds.Solve(context.Background(),
		ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendStream, Eps: 1, Graph: g},
		ds.WithWorkers(1)); err != nil {
		return nil, err
	}
	return &binaryBenchState{graph: g, path: path, residentNs: float64(time.Since(start).Nanoseconds())}, nil
})

type binaryBenchState struct {
	graph      *ds.UndirectedGraph
	path       string
	residentNs float64
}

// BenchmarkBinaryStreamPeel is BenchmarkFileStreamPeel on the binary
// columnar format: the same solve, but the per-pass scan decodes
// column blocks (through the mmap reader where available) instead of
// parsing text. The x-resident metric is this run's ns/op over a
// single-worker resident solve of the same graph — the price of going
// out-of-core in this format.
func BenchmarkBinaryStreamPeel(b *testing.B) {
	st, err := binaryStreamBench()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var scanned int64
			for i := 0; i < b.N; i++ {
				sol, err := ds.Solve(context.Background(),
					ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendStream, Eps: 1, Path: st.path},
					ds.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				scanned = sol.Stats.BytesScanned
			}
			b.SetBytes(scanned)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/st.residentNs, "x-resident")
		})
	}
}

// BenchmarkConvert measures text-to-binary conversion through the
// public API (sharded text load, then the binary writer); bytes/op is
// the text input size.
func BenchmarkConvert(b *testing.B) {
	txt, err := fileStreamBenchPath()
	if err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(txt)
	if err != nil {
		b.Fatal(err)
	}
	out := txt + ".convert.bsg"
	defer os.Remove(out)
	b.ReportAllocs()
	b.SetBytes(st.Size())
	for i := 0; i < b.N; i++ {
		g, _, err := ds.ReadUndirectedFile(txt, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.WriteUndirectedBinary(out, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapReduceSpill measures the MapReduce peel under shrinking
// spill budgets: resident, half-resident, and fully spilled. Results
// are bit-identical across the sweep; the ns/op spread is the price of
// the out-of-core model.
func BenchmarkMapReduceSpill(b *testing.B) {
	g, err := ds.GenerateChungLu(20000, 160000, 2.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	for _, budget := range []int64{0, int64(g.NumEdges()) * 4, 1} {
		b.Run(fmt.Sprintf("spill-bytes=%d", budget), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			var spilled int64
			for i := 0; i < b.N; i++ {
				r, err := ds.MapReduce(g, 1, ds.WithMapReduceConfig(
					ds.MRConfig{Mappers: 4, Reducers: 4, SpillBytes: budget, SpillDir: dir}))
				if err != nil {
					b.Fatal(err)
				}
				spilled = r.SpilledBytes
			}
			b.ReportMetric(float64(spilled)/(1<<20), "spilled-MB/run")
		})
	}
}

// BenchmarkMapReducePeel sweeps the simulated cluster shape of the
// MapReduce peeling driver on a mid-size power-law graph: worker slots
// per machine, machine count, and the degree-job combiner. Results are
// bit-identical across the whole sweep; only wall-clock moves. The
// per-round shuffle volume summed over the run is reported as a custom
// metric so the perf log keeps the Figure 6.7 series.
func BenchmarkMapReducePeel(b *testing.B) {
	g, err := ds.GenerateChungLu(20000, 160000, 2.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	shapes := []ds.MRConfig{
		{Mappers: 1, Reducers: 1},
		{Mappers: 2, Reducers: 2},
		{Mappers: 4, Reducers: 4},
		{Mappers: 8, Reducers: 8},
		{Mappers: 4, Reducers: 4, Machines: 2},
		{Mappers: 4, Reducers: 4, Machines: 4},
		{Mappers: 4, Reducers: 4, Machines: 2, Combine: true},
	}
	for _, cfg := range shapes {
		name := fmt.Sprintf("mappers=%d,reducers=%d,machines=%d", cfg.Mappers, cfg.Reducers, max(cfg.Machines, 1))
		if cfg.Combine {
			name += ",combine"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			var shuffleRecs, shuffleBytes int64
			for i := 0; i < b.N; i++ {
				r, err := ds.MapReduce(g, 1, ds.WithMapReduceConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				shuffleRecs, shuffleBytes = 0, 0
				for _, rd := range r.Rounds {
					shuffleRecs += rd.Shuffle
					shuffleBytes += rd.ShuffleBytes
				}
			}
			b.ReportMetric(float64(shuffleRecs), "shuffle-recs/run")
			b.ReportMetric(float64(shuffleBytes)/(1<<20), "shuffle-MB/run")
		})
	}
}

// BenchmarkMapReduceCheckpoint measures the round-level checkpoint tax:
// the MapReduce peel persisting its full driver state (partitioned edge
// dataset + manifest) every round, versus BenchmarkMapReducePeel's
// happy path. Results are bit-identical with checkpointing on; the
// ns/op spread and the checkpoint volume are the price of restartable
// rounds.
func BenchmarkMapReduceCheckpoint(b *testing.B) {
	g, err := ds.GenerateChungLu(20000, 160000, 2.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, every := range []int{1, 2} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges() * 8)
			dir := b.TempDir()
			var ckBytes, ckWrites int64
			for i := 0; i < b.N; i++ {
				r, err := ds.MapReduce(g, 1, ds.WithMapReduceConfig(
					ds.MRConfig{Mappers: 4, Reducers: 4, CheckpointEvery: every, CheckpointDir: dir}))
				if err != nil {
					b.Fatal(err)
				}
				ckBytes = r.Faults.CheckpointBytes
				ckWrites = r.Faults.CheckpointsWritten
			}
			b.ReportMetric(float64(ckBytes)/(1<<20), "ckpt-MB/run")
			b.ReportMetric(float64(ckWrites), "ckpts/run")
		})
	}
}
