package densestream

import (
	"context"

	"densestream/internal/stream"
)

// EdgeStream is a re-scannable stream of edges: Reset begins a pass, Next
// yields edges until io.EOF. Implementations include in-memory slices,
// frozen graphs, and edge-list files on disk.
type EdgeStream = stream.EdgeStream

// StreamEdge is one streamed edge (directed U→V for directed streams).
type StreamEdge = stream.Edge

// DegreeCounter accumulates per-node degree counts during a streaming
// pass; the exact O(n) array and the Count-Sketch both implement it.
type DegreeCounter = stream.DegreeCounter

// NewSliceStream returns an EdgeStream over an in-memory edge slice.
func NewSliceStream(n int, edges []StreamEdge) (EdgeStream, error) {
	return stream.NewSliceStream(n, edges)
}

// StreamGraph adapts a frozen undirected graph into an EdgeStream.
func StreamGraph(g *UndirectedGraph) EdgeStream { return stream.FromUndirected(g) }

// StreamDirectedGraph adapts a frozen directed graph into an EdgeStream.
func StreamDirectedGraph(g *DirectedGraph) EdgeStream { return stream.FromDirected(g) }

// FileStream streams edges from an edge-list file on disk, re-reading it
// on every pass — true external-memory streaming.
type FileStream = stream.FileStream

// OpenFileStream opens an edge-list file ("u v" per line, dense integer
// ids) as an EdgeStream. Close it when done.
func OpenFileStream(path string) (*FileStream, error) {
	return stream.OpenFileStream(path)
}

// Streaming runs Algorithm 1 against an edge stream holding only O(n)
// node state; results are identical to Undirected on the same graph.
// When the stream is shardable (in-memory streams are; file streams are
// not) each pass's edge scan splits across workers with per-worker
// counter lanes — results stay identical for every worker count.
//
// Deprecated: use the Solve front door:
//
//	Solve(ctx, Problem{Objective: ObjectiveUndirected, Backend: BackendStream, Eps: eps, Edges: es})
func Streaming(es EdgeStream, eps float64, opts ...Option) (*Result, error) {
	sol, err := Solve(context.Background(), Problem{Objective: ObjectiveUndirected, Backend: BackendStream, Eps: eps, Edges: es}, opts...)
	if err != nil {
		return nil, err
	}
	return sol.asResult(), nil
}

// SketchConfig shapes the Count-Sketch degree oracle of §5.1: Tables
// independent hash tables (the paper uses 5) of Buckets counters each.
// Memory is Tables×Buckets words instead of one word per node. An
// entirely zero value selects the defaults (5 tables, n/20 buckets with
// a floor of 16, seed 1); a partially filled one is used verbatim. Pass
// it through WithSketch.
type SketchConfig struct {
	Tables  int
	Buckets int
	Seed    int64
}

// StreamingSketched runs Algorithm 1 with Count-Sketch degree estimation
// instead of the exact degree array, trading a little accuracy for a
// memory footprint independent of n (§5.1). Returns the result and the
// counter memory in 64-bit words (for comparison against n).
//
// Deprecated: use the Solve front door; the counter memory is reported
// in Solution.SketchMemoryWords:
//
//	Solve(ctx, Problem{Objective: ObjectiveUndirected, Backend: BackendStreamSketched, Eps: eps, Edges: es}, WithSketch(cfg))
func StreamingSketched(es EdgeStream, eps float64, cfg SketchConfig) (*Result, int, error) {
	sol, err := Solve(context.Background(),
		Problem{Objective: ObjectiveUndirected, Backend: BackendStreamSketched, Eps: eps, Edges: es},
		WithSketch(cfg))
	if err != nil {
		return nil, 0, err
	}
	return sol.asResult(), sol.SketchMemoryWords, nil
}

// WeightedEdgeStream is a re-scannable stream of weighted edges.
type WeightedEdgeStream = stream.WeightedEdgeStream

// WeightedStreamEdge is one streamed weighted edge.
type WeightedStreamEdge = stream.WeightedEdge

// StreamWeightedGraph adapts a frozen (weighted or unweighted) graph into
// a weighted edge stream.
func StreamWeightedGraph(g *UndirectedGraph) WeightedEdgeStream {
	return stream.FromUndirectedWeighted(g)
}

// NewWeightedSliceStream wraps a fixed slice of weighted edges on n
// nodes as a re-scannable WeightedEdgeStream — for ObjectiveWeighted
// the third column is an edge weight, for ObjectiveSlidingWindow a
// positive integer timestamp.
func NewWeightedSliceStream(n int, edges []WeightedStreamEdge) (WeightedEdgeStream, error) {
	return stream.NewWeightedSliceStream(n, edges)
}

// WeightedFileStream streams weighted edges ("u v w" lines; weight
// defaults to 1) from a file on disk, re-reading it every pass.
type WeightedFileStream = stream.WeightedFileStream

// OpenWeightedFileStream opens a weighted edge-list file as a
// WeightedEdgeStream. Close it when done.
func OpenWeightedFileStream(path string) (*WeightedFileStream, error) {
	return stream.OpenWeightedFileStream(path)
}

// StreamingWeighted runs the weighted Algorithm 1 against a weighted edge
// stream with O(n) state; results match UndirectedWeighted on the same
// graph. Shardable weighted streams (slices and files) scan each pass
// through a fixed float-lane decomposition, so results are
// bit-identical for every WithWorkers count.
//
// Deprecated: use the Solve front door:
//
//	Solve(ctx, Problem{Objective: ObjectiveWeighted, Backend: BackendStream, Eps: eps, WeightedEdges: es})
func StreamingWeighted(es WeightedEdgeStream, eps float64, opts ...Option) (*Result, error) {
	sol, err := Solve(context.Background(), Problem{Objective: ObjectiveWeighted, Backend: BackendStream, Eps: eps, WeightedEdges: es}, opts...)
	if err != nil {
		return nil, err
	}
	return sol.asResult(), nil
}

// StreamingAtLeastK runs Algorithm 2 against an edge stream holding only
// O(n) node state; results are identical to AtLeastK on the same graph.
// Shardable streams scan each pass across WithWorkers workers.
//
// Deprecated: use the Solve front door:
//
//	Solve(ctx, Problem{Objective: ObjectiveAtLeastK, Backend: BackendStream, Eps: eps, K: k, Edges: es})
func StreamingAtLeastK(es EdgeStream, k int, eps float64, opts ...Option) (*Result, error) {
	sol, err := Solve(context.Background(), Problem{Objective: ObjectiveAtLeastK, Backend: BackendStream, K: k, Eps: eps, Edges: es}, opts...)
	if err != nil {
		return nil, err
	}
	return sol.asResult(), nil
}

// StreamingDirected runs Algorithm 3 against a directed edge stream for a
// fixed ratio c; results are identical to Directed on the same graph.
// Shardable streams scan each pass across workers, as in Streaming.
//
// Deprecated: use the Solve front door:
//
//	Solve(ctx, Problem{Objective: ObjectiveDirected, Backend: BackendStream, Eps: eps, C: c, Edges: es})
func StreamingDirected(es EdgeStream, c, eps float64, opts ...Option) (*DirectedResult, error) {
	sol, err := Solve(context.Background(), Problem{Objective: ObjectiveDirected, Backend: BackendStream, C: c, Eps: eps, Edges: es}, opts...)
	if err != nil {
		return nil, err
	}
	return sol.asDirectedResult(), nil
}
