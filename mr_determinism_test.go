package densestream_test

// Determinism contract of the MapReduce runtime, mirroring
// parallel_test.go for the third execution model: every simulated
// cluster shape — Config{1,1}, Config{8,8}, uneven shapes, multiple
// machines, with or without the degree-job combiner — must return a
// bit-identical MRResult on power-law (Chung–Lu) and RMAT graphs. Wall
// and PerMachine are the only fields allowed to differ: they describe
// the run's cluster, not the algorithm, and are normalized away before
// comparison.

import (
	"reflect"
	"testing"

	ds "densestream"
	"densestream/internal/gen"
)

// mrShapes is the cluster-shape sweep shared by the tests below. The
// Combine knob is exercised separately: it changes the recorded shuffle
// volume (that is its purpose), never the result.
var mrShapes = []ds.MRConfig{
	{Mappers: 1, Reducers: 1},
	{Mappers: 8, Reducers: 8},
	{Mappers: 3, Reducers: 5},
	{Mappers: 4, Reducers: 2, Machines: 4},
	{Mappers: 2, Reducers: 2, Machines: 8},
}

func normalizeMR(r *ds.MRResult) *ds.MRResult {
	for i := range r.Rounds {
		r.Rounds[i].Wall = 0
		r.Rounds[i].PerMachine = nil
	}
	return r
}

func normalizeMRDirected(r *ds.MRDirectedResult) *ds.MRDirectedResult {
	for i := range r.Rounds {
		r.Rounds[i].Wall = 0
		r.Rounds[i].PerMachine = nil
	}
	return r
}

func TestMapReduceShapeDeterminismUndirected(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		g, err := gen.ChungLu(4000, 20000, 2.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 1} {
			want, err := ds.MapReduce(g, eps, ds.WithMapReduceConfig(mrShapes[0]))
			if err != nil {
				t.Fatal(err)
			}
			normalizeMR(want)
			for _, cfg := range mrShapes[1:] {
				got, err := ds.MapReduce(g, eps, ds.WithMapReduceConfig(cfg))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(normalizeMR(got), want) {
					t.Fatalf("seed=%d eps=%v cfg=%+v: MRResult differs from 1×1 cluster", seed, eps, cfg)
				}
			}
		}
	}
}

// WithOptions replaces the whole Options struct; a caller that never
// sets the MapReduce field must still get the default cluster, not a
// validation error.
func TestWithOptionsZeroMRConfigFallsBack(t *testing.T) {
	g, err := gen.ChungLu(500, 2000, 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ds.MapReduce(g, 1, ds.WithOptions(ds.Options{Workers: 4}))
	if err != nil {
		t.Fatalf("WithOptions without a MapReduce config: %v", err)
	}
	ref, err := ds.MapReduce(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeMR(r), normalizeMR(ref)) {
		t.Fatal("zero MRConfig fallback disagrees with the default config")
	}
}

// The degree-job combiner must not change what is computed — only cut
// the shuffle volume of the degree rounds.
func TestMapReduceCombinerShrinksShuffleOnly(t *testing.T) {
	g, err := gen.ChungLu(4000, 20000, 2.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ds.MapReduce(g, 1, ds.WithMapReduceConfig(ds.MRConfig{Mappers: 4, Reducers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := ds.MapReduce(g, 1, ds.WithMapReduceConfig(ds.MRConfig{Mappers: 4, Reducers: 4, Combine: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Set, combined.Set) || plain.Density != combined.Density || plain.Passes != combined.Passes {
		t.Fatal("combiner changed the result")
	}
	if combined.Rounds[0].Shuffle >= plain.Rounds[0].Shuffle {
		t.Fatalf("combiner did not shrink the first round's shuffle: %d vs %d",
			combined.Rounds[0].Shuffle, plain.Rounds[0].Shuffle)
	}
	for i := range plain.Rounds {
		p, c := plain.Rounds[i], combined.Rounds[i]
		if p.Nodes != c.Nodes || p.Edges != c.Edges || p.Density != c.Density || p.Removed != c.Removed {
			t.Fatalf("round %d: algorithmic fields differ with combiner", i+1)
		}
	}
}

func TestMapReduceShapeDeterminismDirectedRMAT(t *testing.T) {
	g, err := gen.RMAT(11, 12000, gen.DefaultRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.5, 2} {
		want, err := ds.MapReduceDirected(g, c, 0.5, ds.WithMapReduceConfig(mrShapes[0]))
		if err != nil {
			t.Fatal(err)
		}
		normalizeMRDirected(want)
		for _, cfg := range mrShapes[1:] {
			got, err := ds.MapReduceDirected(g, c, 0.5, ds.WithMapReduceConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizeMRDirected(got), want) {
				t.Fatalf("c=%v cfg=%+v: MRDirectedResult differs from 1×1 cluster", c, cfg)
			}
		}
	}
}

func TestMapReduceShapeDeterminismAtLeastK(t *testing.T) {
	g, err := gen.ChungLu(3000, 12000, 2.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.MapReduceAtLeastK(g, 100, 0.5, ds.WithMapReduceConfig(mrShapes[0]))
	if err != nil {
		t.Fatal(err)
	}
	normalizeMR(want)
	for _, cfg := range mrShapes[1:] {
		got, err := ds.MapReduceAtLeastK(g, 100, 0.5, ds.WithMapReduceConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeMR(got), want) {
			t.Fatalf("cfg=%+v: AtLeastK MRResult differs from 1×1 cluster", cfg)
		}
	}
	// And the MR result still agrees with the in-memory reference.
	mem, err := ds.AtLeastK(g, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Density != want.Density || mem.Passes != want.Passes {
		t.Fatalf("MR (ρ=%v, %d passes) disagrees with in-memory (ρ=%v, %d passes)",
			want.Density, want.Passes, mem.Density, mem.Passes)
	}
}
