package densestream_test

// Determinism contract of the parallel engine: Workers(1) and
// Workers(8) must return identical Set, Density, and Trace — not just
// equivalent densities — on random graphs. This is the public-API pin
// for the bit-identical merge order of internal/par.

import (
	"reflect"
	"testing"

	ds "densestream"
	"densestream/internal/gen"
)

func assertSameResult(t *testing.T, label string, a, b *ds.Result) {
	t.Helper()
	if a.Density != b.Density {
		t.Fatalf("%s: density %v vs %v", label, a.Density, b.Density)
	}
	if !reflect.DeepEqual(a.Set, b.Set) {
		t.Fatalf("%s: Result.Set differs (%d vs %d nodes)", label, len(a.Set), len(b.Set))
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("%s: Result.Trace differs", label)
	}
}

func TestParallelWorkersDeterminismUndirected(t *testing.T) {
	for _, seed := range []int64{1, 5, 42} {
		g, err := gen.ChungLu(4000, 20000, 2.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 0.5, 1} {
			one, err := ds.Undirected(g, eps, ds.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			eight, err := ds.Undirected(g, eps, ds.WithWorkers(8))
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "Undirected", one, eight)
		}
	}
}

func TestParallelWorkersDeterminismDirected(t *testing.T) {
	for _, seed := range []int64{3, 19} {
		g, err := gen.ChungLuDirected(3000, 15000, 2.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{0.5, 1, 2} {
			one, err := ds.Directed(g, c, 0.5, ds.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			eight, err := ds.Directed(g, c, 0.5, ds.WithWorkers(8))
			if err != nil {
				t.Fatal(err)
			}
			if one.Density != eight.Density {
				t.Fatalf("Directed c=%v: density %v vs %v", c, one.Density, eight.Density)
			}
			if !reflect.DeepEqual(one.S, eight.S) || !reflect.DeepEqual(one.T, eight.T) {
				t.Fatalf("Directed c=%v: S/T differ", c)
			}
			if !reflect.DeepEqual(one.Trace, eight.Trace) {
				t.Fatalf("Directed c=%v: Trace differs", c)
			}
		}
	}
}

func TestParallelWorkersDeterminismStreaming(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		g, err := gen.ChungLu(3000, 15000, 2.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		one, err := ds.Streaming(ds.StreamGraph(g), 0.5, ds.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		eight, err := ds.Streaming(ds.StreamGraph(g), 0.5, ds.WithWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "Streaming", one, eight)

		// And the streaming engine still agrees exactly with in-memory
		// peeling at both worker counts.
		mem, err := ds.Undirected(g, 0.5, ds.WithWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		if mem.Density != eight.Density {
			t.Fatalf("Streaming vs Undirected density: %v vs %v", eight.Density, mem.Density)
		}
	}
}

func TestParallelWorkersDeterminismAtLeastKAndWeighted(t *testing.T) {
	g, err := gen.ChungLu(3000, 12000, 2.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ds.AtLeastK(g, 100, 0.5, ds.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := ds.AtLeastK(g, 100, 0.5, ds.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "AtLeastK", one, eight)

	wone, err := ds.UndirectedWeighted(g, 0.5, ds.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	weight, err := ds.UndirectedWeighted(g, 0.5, ds.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "UndirectedWeighted", wone, weight)
}
