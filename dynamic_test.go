package densestream_test

// The dynamic maintenance contract: at every epoch boundary the
// maintained Solution is bit-identical to a from-scratch Solve over the
// live edge set — across insert/delete/expiry churn, every worker
// count, and the full eps range. Plus the SlidingWindow objective
// (a replayed maintainer) and the streaming DirectedSweep parity that
// closes the last backend carve-out.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	ds "densestream"
)

// liveGraph freezes a maintainer's live edge set into an in-memory
// graph — the from-scratch reference input.
func liveGraph(t *testing.T, n int, edges []ds.StreamEdge) *ds.UndirectedGraph {
	t.Helper()
	b := ds.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMaintainerChurnParity is the randomized churn parity sweep:
// insert/delete/expiry churn, workers 1–8, eps 0 / 0.3 / 3. Every
// Flush is an epoch boundary and must reproduce Solve bit for bit.
func TestMaintainerChurnParity(t *testing.T) {
	const n = 36
	for _, eps := range []float64{0, 0.3, 3} {
		for w := 1; w <= 8; w++ {
			eps, w := eps, w
			t.Run("eps="+strconv.FormatFloat(eps, 'g', -1, 64)+"/workers="+strconv.Itoa(w), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(1000*eps) + int64(w)))
				m, err := ds.NewMaintainer(ds.MaintainerConfig{
					NumNodes: n, Eps: eps, DriftEps: eps + 0.5,
					Window: 120, Buckets: 6, Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				for ts := int64(1); ts <= 300; ts++ {
					u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
					if u == v {
						continue
					}
					if err := m.InsertAt(u, v, ts); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(8) == 0 {
						live := m.Edges()
						if len(live) > 0 {
							pick := live[rng.Intn(len(live))]
							if err := m.Delete(pick.U, pick.V); err != nil {
								t.Fatal(err)
							}
						}
					}
					if err := m.Advance(ts); err != nil {
						t.Fatal(err)
					}
					if ts%61 != 0 {
						continue
					}
					got, err := m.Flush()
					if err != nil {
						t.Fatal(err)
					}
					want, err := ds.Solve(context.Background(), ds.Problem{
						Objective: ds.ObjectiveUndirected,
						Backend:   ds.BackendPeel,
						Eps:       eps,
						Graph:     liveGraph(t, n, m.Edges()),
					}, ds.WithWorkers(w))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("ts=%d: epoch boundary drifted from Solve\n got: %+v\nwant: %+v", ts, got, want)
					}
				}
				if m.Stats().Expired == 0 {
					t.Fatal("churn sweep never exercised window expiry")
				}
			})
		}
	}
}

// windowLive computes the reference live set of a replay: an edge is
// live iff the final watermark is within Window of its newest
// timestamp and it accumulated at least one instance.
func windowLive(edges []ds.WeightedStreamEdge, window, bucketW int64) map[[2]int32]bool {
	var maxTS int64
	for _, e := range edges {
		if ts := int64(e.Weight); ts > maxTS {
			maxTS = ts
		}
	}
	// Bucketed expiry: a bucket b = floor(ts/bucketW) has expired when
	// b*bucketW + bucketW - 1 <= maxTS - window.
	hi := int64(-1 << 62)
	if bucketW > 0 {
		q := maxTS - window - bucketW + 1
		hi = q / bucketW
		if q%bucketW != 0 && q < 0 {
			hi--
		}
	}
	live := make(map[[2]int32]bool)
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if int64(e.Weight)/bucketW > hi {
			live[[2]int32{u, v}] = true
		}
	}
	return live
}

// TestSlidingWindowSolve checks the ObjectiveSlidingWindow replay
// against a from-scratch Solve over the independently-computed live
// set, for both a WeightedEdges input and a timestamped Path file.
func TestSlidingWindowSolve(t *testing.T) {
	const (
		n       = 50
		window  = 64
		buckets = 8
	)
	rng := rand.New(rand.NewSource(11))
	var edges []ds.WeightedStreamEdge
	for ts := int64(1); ts <= 400; ts++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, ds.WeightedStreamEdge{U: u, V: v, Weight: float64(ts)})
	}
	live := windowLive(edges, window, window/buckets)
	b := ds.NewBuilder(n)
	for k := range live {
		if err := b.AddEdge(k[0], k[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.Solve(context.Background(), ds.Problem{Eps: 0.25, Graph: g})
	if err != nil {
		t.Fatal(err)
	}

	ws, err := ds.NewWeightedSliceStream(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.Solve(context.Background(), ds.Problem{
		Objective: ds.ObjectiveSlidingWindow,
		Eps:       0.25, Window: window, Buckets: buckets,
		WeightedEdges: ws,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dynamic == nil || got.Dynamic.Expired == 0 || got.Dynamic.Epochs == 0 {
		t.Fatalf("replay stats missing or inert: %+v", got.Dynamic)
	}
	if !reflect.DeepEqual(got.Set, want.Set) || got.Density != want.Density || got.Passes != want.Passes || !reflect.DeepEqual(got.Trace, want.Trace) {
		t.Fatalf("sliding-window replay drifted from live-set Solve\n got: %+v\nwant: %+v", got, want)
	}

	// The same replay from a timestamped edge-list file.
	path := filepath.Join(t.TempDir(), "ts.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if _, err := f.WriteString(strconv.Itoa(int(e.U)) + "\t" + strconv.Itoa(int(e.V)) + "\t" + strconv.FormatInt(int64(e.Weight), 10) + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ds.Solve(context.Background(), ds.Problem{
		Objective: ds.ObjectiveSlidingWindow,
		Eps:       0.25, Window: window, Buckets: buckets,
		Path: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile.Set, got.Set) || fromFile.Density != got.Density {
		t.Fatalf("file replay diverged from stream replay\n got: %+v\nwant: %+v", fromFile, got)
	}
	if fromFile.Stats.BytesScanned == 0 {
		t.Fatal("file replay reported no scanned bytes")
	}
}

// TestStreamDirectedSweepParity closes the streaming DirectedSweep gap:
// the sweep grid, every per-c density, and the kept best must match
// BackendPeel on the materialized graph, at several worker counts.
func TestStreamDirectedSweepParity(t *testing.T) {
	g, err := ds.GenerateRMAT(8, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.Solve(context.Background(), ds.Problem{
		Objective: ds.ObjectiveDirectedSweep,
		Backend:   ds.BackendPeel,
		Delta:     2, Eps: 0.5,
		Directed: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 8} {
		got, err := ds.Solve(context.Background(), ds.Problem{
			Objective: ds.ObjectiveDirectedSweep,
			Backend:   ds.BackendStream,
			Delta:     2, Eps: 0.5,
			Edges: ds.StreamDirectedGraph(g),
		}, ds.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.S, want.S) || !reflect.DeepEqual(got.T, want.T) ||
			got.Density != want.Density || got.Passes != want.Passes {
			t.Fatalf("workers=%d: stream sweep best diverged from peel\n got: %+v\nwant: %+v", w, got, want)
		}
		if got.Sweep.BestC != want.Sweep.BestC || !reflect.DeepEqual(got.Sweep.Points, want.Sweep.Points) {
			t.Fatalf("workers=%d: sweep grid diverged\n got: %+v\nwant: %+v", w, got.Sweep, want.Sweep)
		}
	}
}
