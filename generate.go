package densestream

import "densestream/internal/gen"

// Synthetic graph generators, re-exported for examples, benchmarks, and
// downstream users who need reproducible workloads. All generators are
// deterministic for a given seed.

// GenerateGnm returns an Erdős–Rényi style graph with n nodes and
// approximately m edges.
func GenerateGnm(n int, m int64, seed int64) (*UndirectedGraph, error) {
	return gen.Gnm(n, m, seed)
}

// GenerateChungLu returns a power-law graph (exponent typically in
// (2, 3)) with approximately m edges.
func GenerateChungLu(n int, m int64, exponent float64, seed int64) (*UndirectedGraph, error) {
	return gen.ChungLu(n, m, exponent, seed)
}

// GenerateChungLuDirected is the directed analogue of GenerateChungLu,
// with decoupled in/out degree skew.
func GenerateChungLuDirected(n int, m int64, exponent float64, seed int64) (*DirectedGraph, error) {
	return gen.ChungLuDirected(n, m, exponent, seed)
}

// GenerateRMAT returns a highly skewed directed graph on 2^scale nodes
// using the recursive matrix model with the standard parameters.
func GenerateRMAT(scale int, m int64, seed int64) (*DirectedGraph, error) {
	return gen.RMAT(scale, m, gen.DefaultRMAT, seed)
}

// GeneratePlantedDense returns a power-law background with a planted
// dense subgraph on the first plantedSize node ids (edge probability
// plantedP inside the planted set), plus the planted ids.
func GeneratePlantedDense(n int, m int64, exponent float64, plantedSize int, plantedP float64, seed int64) (*UndirectedGraph, []int32, error) {
	return gen.PlantedDense(n, m, exponent, plantedSize, plantedP, seed)
}

// GenerateCommunities returns a planted-partition graph with the given
// community sizes and intra/inter edge probabilities, plus the community
// assignment per node.
func GenerateCommunities(sizes []int, pIn, pOut float64, seed int64) (*UndirectedGraph, []int, error) {
	return gen.Communities(sizes, pIn, pOut, seed)
}

// GenerateLinkFarm returns a skewed directed web graph with a planted
// link-spam farm: farmSize supporter pages all linking to targets boosted
// pages. Returns the graph, the supporter ids, and the target ids.
func GenerateLinkFarm(scale int, m int64, farmSize, targets int, interP float64, seed int64) (*DirectedGraph, []int32, []int32, error) {
	return gen.LinkFarm(scale, m, farmSize, targets, interP, seed)
}
