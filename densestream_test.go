package densestream_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	ds "densestream"
)

// buildTestGraph returns a K6 (density 2.5) attached to a sparse path.
func buildTestGraph(t *testing.T) *ds.UndirectedGraph {
	t.Helper()
	b := ds.NewBuilder(20)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if err := b.AddEdge(int32(i), int32(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 5; i < 19; i++ {
		if err := b.AddEdge(int32(i), int32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPIPipeline(t *testing.T) {
	g := buildTestGraph(t)

	exact, err := ds.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Density-2.5) > 1e-12 {
		t.Fatalf("exact = %v, want 2.5", exact.Density)
	}

	approx, err := ds.Undirected(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Density < exact.Density/3-1e-9 {
		t.Fatalf("approx %v below (2+2ε) guarantee of %v", approx.Density, exact.Density)
	}

	greedy, err := ds.Greedy(g)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Density < exact.Density/2-1e-9 {
		t.Fatalf("greedy %v below 2-approx of %v", greedy.Density, exact.Density)
	}

	_, coreDensity, err := ds.BestCore(g)
	if err != nil {
		t.Fatal(err)
	}
	if coreDensity < exact.Density/2-1e-9 {
		t.Fatalf("best core %v below 2-approx", coreDensity)
	}

	atLeast, err := ds.AtLeastK(g, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(atLeast.Set) < 10 {
		t.Fatalf("AtLeastK returned %d nodes", len(atLeast.Set))
	}

	mr, err := ds.MapReduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mr.Density-approx.Density) > 1e-9 {
		t.Fatalf("MapReduce %v != in-memory %v", mr.Density, approx.Density)
	}

	st, err := ds.Streaming(ds.StreamGraph(g), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Density-approx.Density) > 1e-9 {
		t.Fatalf("Streaming %v != in-memory %v", st.Density, approx.Density)
	}

	sk, mem, err := ds.StreamingSketched(ds.StreamGraph(g), 0.5,
		ds.SketchConfig{Tables: 5, Buckets: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mem != 5*512 {
		t.Fatalf("sketch memory = %d", mem)
	}
	if sk.Density < exact.Density/4 {
		t.Fatalf("sketched density %v collapsed", sk.Density)
	}
}

func TestPublicAPIDirected(t *testing.T) {
	b := ds.NewDirectedBuilder(30)
	for u := 0; u < 5; u++ {
		for v := 5; v < 15; v++ {
			if err := b.AddEdge(int32(u), int32(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 15; i < 29; i++ {
		_ = b.AddEdge(int32(i), int32(i+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	r, err := ds.Directed(g, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	blockDensity := 50.0 / math.Sqrt(5*10)
	if r.Density < blockDensity/3-1e-9 {
		t.Fatalf("directed %v below guarantee of %v", r.Density, blockDensity)
	}

	sweep, err := ds.DirectedSweep(g, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Best.Density < r.Density-1e-9 {
		t.Fatalf("sweep %v worse than single c %v", sweep.Best.Density, r.Density)
	}

	sr, err := ds.StreamingDirected(ds.StreamDirectedGraph(g), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sr.Density-r.Density) > 1e-9 {
		t.Fatalf("streaming directed %v != in-memory %v", sr.Density, r.Density)
	}

	mr, err := ds.MapReduceDirected(g, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mr.Density-r.Density) > 1e-9 {
		t.Fatalf("MR directed %v != in-memory %v", mr.Density, r.Density)
	}
}

func TestPublicAPIReadWrite(t *testing.T) {
	in := "# toy graph\na b\nb c\nc a\n"
	g, lm, err := ds.ReadUndirected(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if id, ok := lm.Lookup("b"); !ok || lm.Label(id) != "b" {
		t.Fatal("label map broken")
	}
	var buf bytes.Buffer
	if err := ds.WriteUndirected(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ds.ReadUndirected(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip m=%d", g2.NumEdges())
	}

	din := "x y\ny z\n"
	dg, _, err := ds.ReadDirected(strings.NewReader(din))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ds.WriteDirected(&buf, dg); err != nil {
		t.Fatal(err)
	}
	if s := ds.StatsDirected(dg); s.Edges != 2 {
		t.Fatalf("directed stats: %+v", s)
	}
	if s := ds.Stats(g); s.Nodes != 3 || s.MaxDegree != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	g, err := ds.GenerateGnm(100, 300, 1)
	if err != nil || g.NumNodes() != 100 {
		t.Fatalf("Gnm: %v", err)
	}
	cl, err := ds.GenerateChungLu(100, 300, 2.2, 1)
	if err != nil || cl.NumNodes() != 100 {
		t.Fatalf("ChungLu: %v", err)
	}
	cld, err := ds.GenerateChungLuDirected(100, 300, 2.2, 1)
	if err != nil || cld.NumNodes() != 100 {
		t.Fatalf("ChungLuDirected: %v", err)
	}
	rm, err := ds.GenerateRMAT(8, 500, 1)
	if err != nil || rm.NumNodes() != 256 {
		t.Fatalf("RMAT: %v", err)
	}
	pd, planted, err := ds.GeneratePlantedDense(200, 400, 2.2, 20, 0.9, 1)
	if err != nil || pd == nil || len(planted) != 20 {
		t.Fatalf("PlantedDense: %v", err)
	}
	cg, assign, err := ds.GenerateCommunities([]int{30, 30}, 0.3, 0.02, 1)
	if err != nil || cg.NumNodes() != 60 || len(assign) != 60 {
		t.Fatalf("Communities: %v", err)
	}
	lf, farm, targets, err := ds.GenerateLinkFarm(8, 500, 20, 3, 0.2, 1)
	if err != nil || lf == nil || len(farm) != 20 || len(targets) != 3 {
		t.Fatalf("LinkFarm: %v", err)
	}
}

func TestPublicAPIWeighted(t *testing.T) {
	b := ds.NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			_ = b.AddWeightedEdge(int32(i), int32(j), 5)
		}
	}
	_ = b.AddWeightedEdge(3, 4, 0.1)
	_ = b.AddWeightedEdge(4, 5, 0.1)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ds.UndirectedWeighted(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Density < 15.0/3/3 {
		t.Fatalf("weighted density %v", r.Density)
	}
	gw, err := ds.GreedyWeighted(g)
	if err != nil {
		t.Fatal(err)
	}
	if gw.Density < 15.0/3/2-1e-9 {
		t.Fatalf("greedy weighted %v", gw.Density)
	}
}
