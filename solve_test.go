package densestream_test

// Parity pin for the unified Solve API: every objective × backend pair
// must return bit-identical results to the legacy entry point it
// replaced, across ChungLu and RMAT inputs. Plus the cancellation
// contract: a context canceled mid-solve returns context.Canceled
// promptly with a partial trace, on all three runtimes.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	ds "densestream"
)

// parityGraphs returns the undirected and directed inputs of the
// parity sweep: a ChungLu power-law graph and an RMAT graph (the RMAT
// edge list doubles as the undirected input via an undirected rebuild).
func parityGraphs(t *testing.T) (und []*ds.UndirectedGraph, dir []*ds.DirectedGraph) {
	t.Helper()
	cl, err := ds.GenerateChungLu(2000, 10000, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cld, err := ds.GenerateChungLuDirected(1500, 8000, 2.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ds.GenerateRMAT(10, 6000, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected view of the RMAT edge list (self loops dropped,
	// parallel edges merged by Freeze).
	b := ds.NewBuilder(rm.NumNodes())
	rm.Edges(func(u, v int32) bool {
		if u != v {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	rmu, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return []*ds.UndirectedGraph{cl, rmu}, []*ds.DirectedGraph{cld, rm}
}

func solveOK(t *testing.T, p ds.Problem, opts ...ds.Option) *ds.Solution {
	t.Helper()
	sol, err := ds.Solve(context.Background(), p, opts...)
	if err != nil {
		t.Fatalf("Solve(%s/%s): %v", p.Objective, p.Backend, err)
	}
	return sol
}

func wantSame(t *testing.T, label string, got, want any) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Solve diverges from the legacy entry point\n got: %+v\nwant: %+v", label, got, want)
	}
}

// stripWall zeroes the wall-clock field of MR rounds, the only
// per-round field that differs between two runs of the same job.
func stripWall(rounds []ds.MRRoundStat) []ds.MRRoundStat {
	out := make([]ds.MRRoundStat, len(rounds))
	for i, r := range rounds {
		r.Wall = 0
		out[i] = r
	}
	return out
}

func TestSolveParityUndirectedObjectives(t *testing.T) {
	und, _ := parityGraphs(t)
	const eps = 0.5
	sketchCfg := ds.SketchConfig{Tables: 5, Buckets: 256, Seed: 1}
	for gi, g := range und {
		// Peel.
		sol := solveOK(t, ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendPeel, Eps: eps, Graph: g})
		legacy, err := ds.Undirected(g, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "undirected/peel", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, legacy)

		// Stream.
		sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendStream, Eps: eps, Edges: ds.StreamGraph(g)})
		st, err := ds.Streaming(ds.StreamGraph(g), eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "undirected/stream", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, st)
		if sol.Density != legacy.Density {
			t.Fatalf("graph %d: stream density %v != peel %v", gi, sol.Density, legacy.Density)
		}

		// StreamSketched.
		sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendStreamSketched, Eps: eps, Edges: ds.StreamGraph(g)},
			ds.WithSketch(sketchCfg))
		sk, mem, err := ds.StreamingSketched(ds.StreamGraph(g), eps, sketchCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "undirected/sketch", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, sk)
		if sol.SketchMemoryWords != mem {
			t.Fatalf("sketch memory %d != %d", sol.SketchMemoryWords, mem)
		}

		// MapReduce.
		sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveUndirected, Backend: ds.BackendMapReduce, Eps: eps, Graph: g})
		mr, err := ds.MapReduce(g, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "undirected/mr", &ds.MRResult{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Rounds: stripWall(sol.MRRounds)},
			&ds.MRResult{Set: mr.Set, Density: mr.Density, Passes: mr.Passes, Rounds: stripWall(mr.Rounds)})
		if sol.Density != legacy.Density {
			t.Fatalf("graph %d: MR density %v != peel %v", gi, sol.Density, legacy.Density)
		}
	}
}

func TestSolveParityWeightedAndAtLeastK(t *testing.T) {
	und, _ := parityGraphs(t)
	g := und[0]
	const eps, k = 0.5, 100

	// Weighted on peel and stream (unit weights on an unweighted graph).
	sol := solveOK(t, ds.Problem{Objective: ds.ObjectiveWeighted, Backend: ds.BackendPeel, Eps: eps, Graph: g})
	w, err := ds.UndirectedWeighted(g, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "weighted/peel", sol.Set, w.Set)
	sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveWeighted, Backend: ds.BackendStream, Eps: eps, WeightedEdges: ds.StreamWeightedGraph(g)})
	ws, err := ds.StreamingWeighted(ds.StreamWeightedGraph(g), eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "weighted/stream", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, ws)

	// AtLeastK on all three exact backends.
	sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveAtLeastK, Backend: ds.BackendPeel, K: k, Eps: eps, Graph: g})
	al, err := ds.AtLeastK(g, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "atleastk/peel", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, al)

	sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveAtLeastK, Backend: ds.BackendStream, K: k, Eps: eps, Edges: ds.StreamGraph(g)})
	als, err := ds.StreamingAtLeastK(ds.StreamGraph(g), k, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "atleastk/stream", &ds.Result{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Trace: sol.Trace}, als)

	sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveAtLeastK, Backend: ds.BackendMapReduce, K: k, Eps: eps, Graph: g})
	alm, err := ds.MapReduceAtLeastK(g, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "atleastk/mr", &ds.MRResult{Set: sol.Set, Density: sol.Density, Passes: sol.Passes, Rounds: stripWall(sol.MRRounds)},
		&ds.MRResult{Set: alm.Set, Density: alm.Density, Passes: alm.Passes, Rounds: stripWall(alm.Rounds)})
}

func TestSolveParityDirectedObjectives(t *testing.T) {
	_, dir := parityGraphs(t)
	const eps, c, delta = 0.5, 1.0, 2.0
	for gi, g := range dir {
		sol := solveOK(t, ds.Problem{Objective: ds.ObjectiveDirected, Backend: ds.BackendPeel, C: c, Eps: eps, Directed: g})
		legacy, err := ds.Directed(g, c, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "directed/peel", &ds.DirectedResult{S: sol.S, T: sol.T, Density: sol.Density, Passes: sol.Passes, Trace: sol.DirectedTrace}, legacy)

		sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveDirected, Backend: ds.BackendStream, C: c, Eps: eps, Edges: ds.StreamDirectedGraph(g)})
		st, err := ds.StreamingDirected(ds.StreamDirectedGraph(g), c, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "directed/stream", &ds.DirectedResult{S: sol.S, T: sol.T, Density: sol.Density, Passes: sol.Passes, Trace: sol.DirectedTrace}, st)
		if sol.Density != legacy.Density {
			t.Fatalf("graph %d: stream directed density %v != peel %v", gi, sol.Density, legacy.Density)
		}

		sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveDirected, Backend: ds.BackendMapReduce, C: c, Eps: eps, Directed: g})
		mr, err := ds.MapReduceDirected(g, c, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sol.S, mr.S) || !reflect.DeepEqual(sol.T, mr.T) || sol.Density != mr.Density || sol.Passes != mr.Passes {
			t.Fatalf("directed/mr: Solve diverges from MapReduceDirected")
		}

		swSol := solveOK(t, ds.Problem{Objective: ds.ObjectiveDirectedSweep, Backend: ds.BackendPeel, Delta: delta, Eps: eps, Directed: g})
		sw, err := ds.DirectedSweep(g, delta, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantSame(t, "sweep/peel", swSol.Sweep, sw)
		if swSol.Density != sw.Best.Density {
			t.Fatalf("sweep: Solution density %v != Best %v", swSol.Density, sw.Best.Density)
		}
	}
}

func TestSolveParityExactAndGreedy(t *testing.T) {
	g, err := ds.GenerateChungLu(400, 1600, 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, ds.Problem{Objective: ds.ObjectiveExact, Graph: g})
	ex, err := ds.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "exact/peel", sol.Set, ex.Set)
	if sol.Density != ex.Density || sol.ExactNumer != ex.Numer || sol.ExactDenom != ex.Denom || sol.Passes != ex.FlowCalls {
		t.Fatalf("exact: Solve diverges: %+v vs %+v", sol, ex)
	}

	sol = solveOK(t, ds.Problem{Objective: ds.ObjectiveGreedy, Graph: g})
	gr, err := ds.Greedy(g)
	if err != nil {
		t.Fatal(err)
	}
	wantSame(t, "greedy/peel", sol.Set, gr.Set)
	if sol.Density != gr.Density || sol.Passes != gr.Peels {
		t.Fatalf("greedy: Solve diverges: %+v vs %+v", sol, gr)
	}
}

// cancellationProblems enumerates one problem per runtime, all on the
// same input, for the cancellation contract tests.
func cancellationProblems(t *testing.T) map[string]ds.Problem {
	t.Helper()
	g, err := ds.GenerateChungLu(3000, 15000, 2.1, 17)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ds.Problem{
		"peel":   {Objective: ds.ObjectiveUndirected, Backend: ds.BackendPeel, Eps: 0, Graph: g},
		"stream": {Objective: ds.ObjectiveUndirected, Backend: ds.BackendStream, Eps: 0, Edges: ds.StreamGraph(g)},
		"mr":     {Objective: ds.ObjectiveUndirected, Backend: ds.BackendMapReduce, Eps: 0, Graph: g},
	}
}

func TestSolveCancellationMidSolve(t *testing.T) {
	for name, p := range cancellationProblems(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			hookCalls := 0
			sol, err := ds.Solve(ctx, p, ds.WithProgress(func(ds.PassStat) bool {
				hookCalls++
				if hookCalls == 2 {
					cancel() // cancel at the start of pass 2, mid-solve
				}
				return true
			}))
			if sol != nil {
				t.Fatalf("canceled solve returned a solution")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			var pe *ds.PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PartialError, got %T: %v", err, err)
			}
			if pe.Passes < 1 || pe.Passes > 2 {
				t.Fatalf("cancellation not within one pass: stopped after %d passes (hook ran %d times)", pe.Passes, hookCalls)
			}
			if len(pe.Trace) == 0 {
				t.Fatalf("partial error carries no trace")
			}
		})
	}
}

func TestSolvePreCanceledContext(t *testing.T) {
	for name, p := range cancellationProblems(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := ds.Solve(ctx, p)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
	}
}

// TestSolveExactGreedyPreCanceled pins the cancellation contract on the
// two objectives whose inner loops gained ctx polls: a canceled context
// aborts with a *PartialError before any work.
func TestSolveExactGreedyPreCanceled(t *testing.T) {
	g, err := ds.GenerateChungLu(300, 1200, 2.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []ds.Objective{ds.ObjectiveExact, ds.ObjectiveGreedy} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := ds.Solve(ctx, ds.Problem{Objective: obj, Graph: g})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", obj, err)
		}
		var pe *ds.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: want *PartialError, got %T", obj, err)
		}
	}
}

// TestSolveExactMidRunCancellation lands a deadline inside the flow
// computation (the instance takes far longer than the deadline) and
// checks the solver aborts mid-flow with the uniform error shape —
// the ROADMAP gap was that Exact only checked the context at start.
func TestSolveExactMidRunCancellation(t *testing.T) {
	g, _, err := ds.GeneratePlantedDense(3000, 12000, 2.2, 40, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, serr := ds.Solve(ctx, ds.Problem{Objective: ds.ObjectiveExact, Graph: g})
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", serr)
	}
	var pe *ds.PartialError
	if !errors.As(serr, &pe) {
		t.Fatalf("want *PartialError, got %T: %v", serr, serr)
	}
}

func TestSolveProgressStop(t *testing.T) {
	for name, p := range cancellationProblems(t) {
		t.Run(name, func(t *testing.T) {
			calls := 0
			_, err := ds.Solve(context.Background(), p, ds.WithProgress(func(ds.PassStat) bool {
				calls++
				return calls < 3 // stop at the start of pass 3
			}))
			if !errors.Is(err, ds.ErrStopped) {
				t.Fatalf("want ErrStopped, got %v", err)
			}
			var pe *ds.PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PartialError, got %T", err)
			}
			if pe.Passes != 2 || len(pe.Trace) == 0 {
				t.Fatalf("want 2 completed passes with a trace, got %d (%d entries)", pe.Passes, len(pe.Trace))
			}
		})
	}
}

func TestSolveDeadline(t *testing.T) {
	p := cancellationProblems(t)["peel"]
	ctx, cancel := context.WithTimeout(context.Background(), 0) // already expired
	defer cancel()
	_, err := ds.Solve(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestSolveValidation(t *testing.T) {
	g, err := ds.GenerateChungLu(100, 300, 2.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := ds.GenerateChungLuDirected(100, 300, 2.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ds.Problem{
		{},                       // no input
		{Graph: g, Directed: dg}, // two inputs
		{Objective: ds.ObjectiveDirected, Graph: g, C: 1},                                            // wrong input kind
		{Objective: ds.ObjectiveExact, Backend: ds.BackendStream, Graph: g},                          // exact is peel-only
		{Objective: ds.ObjectiveDirectedSweep, Backend: ds.BackendMapReduce, Directed: dg, Delta: 2}, // no MR sweep
		{Objective: ds.ObjectiveWeighted, Backend: ds.BackendStreamSketched, Graph: g},               // sketch is undirected-only
		{Backend: ds.BackendMapReduce, Edges: ds.StreamGraph(g)},                                     // MR needs a graph
	}
	for i, p := range bad {
		if _, err := ds.Solve(context.Background(), p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
	// Negative MR shapes are rejected rather than silently defaulted.
	if _, err := ds.Solve(context.Background(),
		ds.Problem{Backend: ds.BackendMapReduce, Graph: g, Eps: 1},
		ds.WithMapReduceConfig(ds.MRConfig{Mappers: -1})); err == nil {
		t.Error("negative MR config accepted")
	}
	// A nil context is treated as context.Background().
	if _, err := ds.Solve(nil, ds.Problem{Graph: g, Eps: 1}); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}
